package core

import (
	"testing"
	"testing/quick"
)

func TestConfigCmdEncodeWidth(t *testing.T) {
	p := DefaultParams()
	cmd := ConfigCmd{Out: 19, Sel: LaneSel{Enable: true, In: 15}}
	w, err := cmd.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if w >= 1<<10 {
		t.Fatalf("encoded command %#x exceeds the paper's 10 bits", w)
	}
}

func TestConfigCmdRoundTripProperty(t *testing.T) {
	p := DefaultParams()
	f := func(out, in uint8, en bool) bool {
		cmd := ConfigCmd{
			Out: int(out) % p.TotalLanes(),
			Sel: LaneSel{Enable: en, In: int(in) % p.ForeignLanes()},
		}
		w, err := cmd.Encode(p)
		if err != nil {
			return false
		}
		got, err := DecodeConfigCmd(p, w)
		return err == nil && got == cmd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigCmdEncodeErrors(t *testing.T) {
	p := DefaultParams()
	for _, cmd := range []ConfigCmd{
		{Out: -1}, {Out: 20}, {Out: 0, Sel: LaneSel{In: 16}}, {Out: 0, Sel: LaneSel{In: -1}},
	} {
		if _, err := cmd.Encode(p); err == nil {
			t.Errorf("Encode accepted %+v", cmd)
		}
	}
}

func TestDecodeConfigCmdErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := DecodeConfigCmd(p, 1<<10); err == nil {
		t.Error("decode accepted an 11-bit word")
	}
	// Output lane 21 does not exist (5 bits can encode up to 31).
	bad := uint32(21)
	if _, err := DecodeConfigCmd(p, bad); err == nil {
		t.Error("decode accepted out-of-range lane")
	}
}

func TestConfigMemorySize(t *testing.T) {
	p := DefaultParams()
	c := NewConfig(p)
	if got := c.Bits().Len(); got != 100 {
		t.Fatalf("config memory = %d bits, want the paper's 100", got)
	}
}

func TestConfigSetLaneAndInputFor(t *testing.T) {
	p := DefaultParams()
	c := NewConfig(p)
	in := LaneID{Port: West, Lane: 2}
	out := LaneID{Port: East, Lane: 1}
	rel, err := p.RelIndex(out.Port, in)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLane(p.Global(out), LaneSel{Enable: true, In: rel})
	g, ok := c.InputFor(p.Global(out))
	if !ok || g != p.Global(in) {
		t.Fatalf("InputFor = %d,%v, want %d,true", g, ok, p.Global(in))
	}
	if _, ok := c.InputFor(p.Global(LaneID{Port: North, Lane: 0})); ok {
		t.Fatal("disabled lane reported an input")
	}
	if c.EnabledLanes() != 1 {
		t.Fatalf("EnabledLanes = %d", c.EnabledLanes())
	}
}

func TestConfigBitsReflectChanges(t *testing.T) {
	p := DefaultParams()
	c := NewConfig(p)
	before := c.Bits()
	c.SetLane(0, LaneSel{Enable: true, In: 5})
	after := c.Bits()
	if before.Hamming(after) == 0 {
		t.Fatal("configuration change did not alter the bit image")
	}
	// Applying the same value again is idempotent.
	c.SetLane(0, LaneSel{Enable: true, In: 5})
	if !c.Bits().Equal(after) {
		t.Fatal("idempotent write changed bits")
	}
}

func TestConfigCopyIsDeep(t *testing.T) {
	p := DefaultParams()
	c := NewConfig(p)
	c.SetLane(3, LaneSel{Enable: true, In: 1})
	cp := c.Copy()
	c.SetLane(3, LaneSel{})
	if !cp.Lane(3).Enable {
		t.Fatal("copy aliases original")
	}
}

func TestConfigApplyCmd(t *testing.T) {
	p := DefaultParams()
	c := NewConfig(p)
	c.Apply(ConfigCmd{Out: 7, Sel: LaneSel{Enable: true, In: 9}})
	if s := c.Lane(7); !s.Enable || s.In != 9 {
		t.Fatalf("Apply result %+v", s)
	}
}

func TestCircuitCmd(t *testing.T) {
	p := DefaultParams()
	cc := Circuit{In: LaneID{Port: Tile, Lane: 0}, Out: LaneID{Port: East, Lane: 0}}
	cmd, err := cc.Cmd(p)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Out != p.Global(cc.Out) || !cmd.Sel.Enable {
		t.Fatalf("Cmd = %+v", cmd)
	}
	if g := p.InputLane(East, cmd.Sel.In); g != p.Global(cc.In) {
		t.Fatalf("command selects lane %d, want %d", g, p.Global(cc.In))
	}
	// Same-port circuits are illegal: data does not flow back.
	if _, err := (Circuit{In: LaneID{Port: East, Lane: 0}, Out: LaneID{Port: East, Lane: 1}}).Cmd(p); err == nil {
		t.Fatal("same-port circuit accepted")
	}
}

func TestSetLanePanicsOnBadSelect(t *testing.T) {
	p := DefaultParams()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConfig(p).SetLane(0, LaneSel{Enable: true, In: 16})
}
