package core

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// Assembly bundles one circuit-switched router with a full tile-interface
// data converter (one transmit and one receive converter per tile-port
// lane) and owns the per-cycle power accounting for the whole design. It is
// the unit the single-router experiments (Figures 9 and 10) and the mesh
// instantiate.
type Assembly struct {
	// R is the router.
	R *Router
	// Tx are the transmit converters, one per tile-port lane; Tx[i] feeds
	// the router's tile input lane i.
	Tx []*TxConverter
	// Rx are the receive converters, one per tile-port lane; Rx[i] watches
	// the router's tile output lane i.
	Rx []*RxConverter

	p      Params
	meter  *power.Meter
	lib    stdcell.Lib
	gated  bool
	design *netlist.Design

	// idle-cycle clock-energy cache for the activity-tracked kernel: the
	// gated per-cycle energy depends only on the configuration memory and
	// the converter enables, both of which are frozen while the assembly
	// is quiescent. The enable masks validate the cache against direct
	// Enabled-flag writes (the CCN toggles converters outside the clock).
	idleFJ     float64
	idleFJOK   bool
	idleTxMask uint64
	idleRxMask uint64

	// asleep is the quiescence fast path: once an assembly is quiescent
	// AND self-stable — router unconfigured, every converter disabled —
	// no external register can influence it (an unconfigured crossbar
	// ignores its inputs, a disabled converter its lane), so the state
	// can only end through a wake. The flag turns the per-cycle poll of
	// the >80% idle routers of a sparse mesh into one boolean load.
	asleep bool
}

// AssemblyOptions configure an Assembly.
type AssemblyOptions struct {
	// Flow is the window-counter configuration of the converters.
	Flow FlowParams
	// RxBufCap is the destination buffer capacity in words.
	RxBufCap int
}

// DefaultAssemblyOptions returns the options used by the paper-shaped
// experiments: blocking flow control with WC=8, X=4, and a destination
// buffer that exactly fits the window.
func DefaultAssemblyOptions() AssemblyOptions {
	f := DefaultFlow()
	return AssemblyOptions{Flow: f, RxBufCap: f.WC}
}

// NewAssembly builds a router plus converters and wires the tile port.
func NewAssembly(p Params, opt AssemblyOptions) *Assembly {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	a := &Assembly{R: NewRouter(p), p: p}
	for l := 0; l < p.LanesPerPort; l++ {
		tx := NewTxConverter(p, opt.Flow)
		rx := NewRxConverter(p, opt.Flow, opt.RxBufCap)
		g := p.Global(LaneID{Port: Tile, Lane: l})
		a.R.ConnectIn(g, &tx.Out)
		tx.ConnectAck(&a.R.AckOut[g])
		rx.ConnectIn(&a.R.Out[g])
		a.R.ConnectAckIn(g, &rx.AckOut)
		a.Tx = append(a.Tx, tx)
		a.Rx = append(a.Rx, rx)
	}
	return a
}

// Params returns the assembly's design parameters.
func (a *Assembly) Params() Params { return a.p }

// BindMeter attaches a power meter covering the router and its converters.
// The design the meter was created with should be Netlist(p, lib) so that
// the ungated clock energy matches the register census. With gated true the
// assembly models the configuration-driven clock gating of Section 7.3.
func (a *Assembly) BindMeter(m *power.Meter, lib stdcell.Lib, gated bool) {
	a.meter = m
	a.lib = lib
	a.gated = gated
	a.R.BindMeter(m, lib, gated)
	for _, tx := range a.Tx {
		tx.BindMeter(m)
	}
	for _, rx := range a.Rx {
		rx.BindMeter(m)
	}
}

// EstablishLocal configures a circuit through this router and enables the
// converters it terminates at, if any. It is the single-router counterpart
// of the CCN's path configuration.
func (a *Assembly) EstablishLocal(c Circuit) error {
	if err := a.R.Configure(c); err != nil {
		return err
	}
	if c.In.Port == Tile {
		a.Tx[c.In.Lane].Enabled = true
	}
	if c.Out.Port == Tile {
		a.Rx[c.Out.Lane].Enabled = true
	}
	return nil
}

// Eval implements sim.Clocked.
func (a *Assembly) Eval() {
	a.R.Eval()
	for _, tx := range a.Tx {
		tx.Eval()
	}
	for _, rx := range a.Rx {
		rx.Eval()
	}
}

// Commit implements sim.Clocked. After all sub-components commit, the
// assembly charges this cycle's clock energy to the meter: the full design
// when ungated, or only the configuration memory, enabled lanes and enabled
// converters when gated.
func (a *Assembly) Commit() {
	for _, tx := range a.Tx {
		tx.Commit()
	}
	for _, rx := range a.Rx {
		rx.Commit()
	}
	a.R.Commit()
	if a.meter == nil {
		return
	}
	if !a.gated {
		a.meter.Tick()
		return
	}
	e := a.gatedClockFJ()
	a.idleFJ, a.idleFJOK = e, true
	a.idleTxMask, a.idleRxMask = a.enableMasks()
	a.meter.TickGated(e)
}

// gatedClockFJ returns the clock energy one cycle draws under the
// configuration-driven gating of Section 7.3.
func (a *Assembly) gatedClockFJ() float64 {
	e := a.R.ClockFJ(a.lib, true)
	for _, tx := range a.Tx {
		e += tx.ClockFJ(a.lib, true)
	}
	for _, rx := range a.Rx {
		e += rx.ClockFJ(a.lib, true)
	}
	return e
}

// enableMasks summarizes which converters are enabled, the only gated
// clock-energy input that can change without a clock edge.
func (a *Assembly) enableMasks() (txm, rxm uint64) {
	for i, tx := range a.Tx {
		if tx.Enabled {
			txm |= 1 << uint(i)
		}
	}
	for i, rx := range a.Rx {
		if rx.Enabled {
			rxm |= 1 << uint(i)
		}
	}
	return txm, rxm
}

// SetWake implements sim.Waker, forwarding the wake to the router and the
// converters: a configuration write, a pushed word or a tile-side pop on
// any sub-component re-activates the whole assembly and ends any asleep
// fast path.
func (a *Assembly) SetWake(fn func()) {
	wake := func() {
		a.asleep = false
		if fn != nil {
			fn()
		}
	}
	a.R.SetWake(wake)
	for _, tx := range a.Tx {
		tx.SetWake(wake)
	}
	for _, rx := range a.Rx {
		rx.SetWake(wake)
	}
}

// Quiescent implements sim.Quiescer: the assembly is skippable only when
// the router and every converter are individually at rest. The per-cycle
// meter tick a skipped cycle still owes is reproduced by IdleTick.
func (a *Assembly) Quiescent() bool {
	if a.asleep {
		return true
	}
	if !a.R.Quiescent() {
		return false
	}
	for _, tx := range a.Tx {
		if !tx.Quiescent() {
			return false
		}
	}
	for _, rx := range a.Rx {
		if !rx.Quiescent() {
			return false
		}
	}
	// Latch the fast path only when the quiescence cannot be ended by an
	// external register: with no circuit configured the crossbar ignores
	// its inputs, and a disabled converter ignores its lane and ack
	// wires. Any enabled converter (or configured lane) keeps the full
	// poll, since upstream traffic or acks could arrive on any cycle.
	if a.R.Unconfigured() && !a.anyConverterEnabled() {
		a.asleep = true
	}
	return true
}

// Asleep implements sim.Sleeper, exposing the latched fast path: while
// asleep the unconfigured crossbar and disabled converters ignore every
// input register, so only a staging mutator — which runs the wake
// closure and clears the latch — can end the assembly's quiescence. The
// active kernel parks asleep assemblies without any upstream
// declaration; committing neighbours need not (and do not) wake them.
func (a *Assembly) Asleep() bool { return a.asleep }

// anyConverterEnabled reports whether any tile converter is enabled.
func (a *Assembly) anyConverterEnabled() bool {
	for _, tx := range a.Tx {
		if tx.Enabled {
			return true
		}
	}
	for _, rx := range a.Rx {
		if rx.Enabled {
			return true
		}
	}
	return false
}

// IdleTick implements sim.IdleTicker: a skipped cycle charges exactly the
// clock energy an active-but-idle cycle would have charged — the full
// clock network ungated, or the cached configuration-dependent share when
// gated. The cache is recomputed whenever a converter enable changed
// underneath it, so direct Enabled writes (the CCN's unmap path) stay
// exact.
func (a *Assembly) IdleTick() { a.IdleWindow(1) }

// IdleWindow implements sim.IdleWindower: n skipped cycles charge n times
// the idle clock energy in one O(1) meter extension — the meter's
// run-length accounting makes the batch bit-identical to n IdleTicks, so
// the event kernel can fast-forward whole idle windows across this
// assembly.
func (a *Assembly) IdleWindow(n uint64) {
	if a.meter == nil {
		return
	}
	if !a.gated {
		a.meter.TickN(n)
		return
	}
	txm, rxm := a.enableMasks()
	if !a.idleFJOK || txm != a.idleTxMask || rxm != a.idleRxMask {
		a.idleFJ, a.idleFJOK = a.gatedClockFJ(), true
		a.idleTxMask, a.idleRxMask = txm, rxm
	}
	a.meter.TickGatedN(a.idleFJ, n)
}

// VerifyClockCensus checks that the netlist design used for the meter
// agrees with the behavioural register census — the consistency contract
// between the area model and the power model. It returns an error
// describing any mismatch.
func VerifyClockCensus(p Params, lib stdcell.Lib) error {
	d := Netlist(p, lib)
	var behavioural float64 = power.ClockEnergyFor(lib, RouterRegBits(p)+ConverterRegBits(p), 0)
	structural := d.ClockEnergyPerCycle(lib)
	if diff := structural - behavioural; diff < 0 || diff > 0.2*behavioural {
		return fmt.Errorf("core: structural clock energy %.1f fJ vs behavioural %.1f fJ",
			structural, behavioural)
	}
	return nil
}

var _ sim.Clocked = (*Assembly)(nil)
var _ sim.Clocked = (*Router)(nil)
var _ sim.Clocked = (*TxConverter)(nil)
var _ sim.Clocked = (*RxConverter)(nil)

var _ sim.Quiescer = (*Assembly)(nil)
var _ sim.Quiescer = (*Router)(nil)
var _ sim.Quiescer = (*TxConverter)(nil)
var _ sim.Quiescer = (*RxConverter)(nil)

var _ sim.Waker = (*Assembly)(nil)
var _ sim.Sleeper = (*Assembly)(nil)
var _ sim.Waker = (*Router)(nil)
var _ sim.Waker = (*TxConverter)(nil)
var _ sim.Waker = (*RxConverter)(nil)

var _ sim.IdleTicker = (*Assembly)(nil)
var _ sim.IdleWindower = (*Assembly)(nil)
