package core

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// Assembly bundles one circuit-switched router with a full tile-interface
// data converter (one transmit and one receive converter per tile-port
// lane) and owns the per-cycle power accounting for the whole design. It is
// the unit the single-router experiments (Figures 9 and 10) and the mesh
// instantiate.
type Assembly struct {
	// R is the router.
	R *Router
	// Tx are the transmit converters, one per tile-port lane; Tx[i] feeds
	// the router's tile input lane i.
	Tx []*TxConverter
	// Rx are the receive converters, one per tile-port lane; Rx[i] watches
	// the router's tile output lane i.
	Rx []*RxConverter

	p      Params
	meter  *power.Meter
	lib    stdcell.Lib
	gated  bool
	design *netlist.Design
}

// AssemblyOptions configure an Assembly.
type AssemblyOptions struct {
	// Flow is the window-counter configuration of the converters.
	Flow FlowParams
	// RxBufCap is the destination buffer capacity in words.
	RxBufCap int
}

// DefaultAssemblyOptions returns the options used by the paper-shaped
// experiments: blocking flow control with WC=8, X=4, and a destination
// buffer that exactly fits the window.
func DefaultAssemblyOptions() AssemblyOptions {
	f := DefaultFlow()
	return AssemblyOptions{Flow: f, RxBufCap: f.WC}
}

// NewAssembly builds a router plus converters and wires the tile port.
func NewAssembly(p Params, opt AssemblyOptions) *Assembly {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	a := &Assembly{R: NewRouter(p), p: p}
	for l := 0; l < p.LanesPerPort; l++ {
		tx := NewTxConverter(p, opt.Flow)
		rx := NewRxConverter(p, opt.Flow, opt.RxBufCap)
		g := p.Global(LaneID{Port: Tile, Lane: l})
		a.R.ConnectIn(g, &tx.Out)
		tx.ConnectAck(&a.R.AckOut[g])
		rx.ConnectIn(&a.R.Out[g])
		a.R.ConnectAckIn(g, &rx.AckOut)
		a.Tx = append(a.Tx, tx)
		a.Rx = append(a.Rx, rx)
	}
	return a
}

// Params returns the assembly's design parameters.
func (a *Assembly) Params() Params { return a.p }

// BindMeter attaches a power meter covering the router and its converters.
// The design the meter was created with should be Netlist(p, lib) so that
// the ungated clock energy matches the register census. With gated true the
// assembly models the configuration-driven clock gating of Section 7.3.
func (a *Assembly) BindMeter(m *power.Meter, lib stdcell.Lib, gated bool) {
	a.meter = m
	a.lib = lib
	a.gated = gated
	a.R.BindMeter(m, lib, gated)
	for _, tx := range a.Tx {
		tx.BindMeter(m)
	}
	for _, rx := range a.Rx {
		rx.BindMeter(m)
	}
}

// EstablishLocal configures a circuit through this router and enables the
// converters it terminates at, if any. It is the single-router counterpart
// of the CCN's path configuration.
func (a *Assembly) EstablishLocal(c Circuit) error {
	if err := a.R.Configure(c); err != nil {
		return err
	}
	if c.In.Port == Tile {
		a.Tx[c.In.Lane].Enabled = true
	}
	if c.Out.Port == Tile {
		a.Rx[c.Out.Lane].Enabled = true
	}
	return nil
}

// Eval implements sim.Clocked.
func (a *Assembly) Eval() {
	a.R.Eval()
	for _, tx := range a.Tx {
		tx.Eval()
	}
	for _, rx := range a.Rx {
		rx.Eval()
	}
}

// Commit implements sim.Clocked. After all sub-components commit, the
// assembly charges this cycle's clock energy to the meter: the full design
// when ungated, or only the configuration memory, enabled lanes and enabled
// converters when gated.
func (a *Assembly) Commit() {
	for _, tx := range a.Tx {
		tx.Commit()
	}
	for _, rx := range a.Rx {
		rx.Commit()
	}
	a.R.Commit()
	if a.meter == nil {
		return
	}
	if !a.gated {
		a.meter.Tick()
		return
	}
	e := a.R.ClockFJ(a.lib, true)
	for _, tx := range a.Tx {
		e += tx.ClockFJ(a.lib, true)
	}
	for _, rx := range a.Rx {
		e += rx.ClockFJ(a.lib, true)
	}
	a.meter.TickGated(e)
}

// VerifyClockCensus checks that the netlist design used for the meter
// agrees with the behavioural register census — the consistency contract
// between the area model and the power model. It returns an error
// describing any mismatch.
func VerifyClockCensus(p Params, lib stdcell.Lib) error {
	d := Netlist(p, lib)
	var behavioural float64 = power.ClockEnergyFor(lib, RouterRegBits(p)+ConverterRegBits(p), 0)
	structural := d.ClockEnergyPerCycle(lib)
	if diff := structural - behavioural; diff < 0 || diff > 0.2*behavioural {
		return fmt.Errorf("core: structural clock energy %.1f fJ vs behavioural %.1f fJ",
			structural, behavioural)
	}
	return nil
}

var _ sim.Clocked = (*Assembly)(nil)
var _ sim.Clocked = (*Router)(nil)
var _ sim.Clocked = (*TxConverter)(nil)
var _ sim.Clocked = (*RxConverter)(nil)
