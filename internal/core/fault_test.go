package core

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/sim"
)

// faultyLane sits between a transmit and a receive converter and flips
// lane bits on demand — a soft-error injector for robustness testing.
type faultyLane struct {
	in       *uint8
	Out      uint8
	flipMask uint8 // XORed onto the lane for one cycle, then cleared
	next     uint8
}

func (f *faultyLane) Eval() {
	f.next = (*f.in ^ f.flipMask) & 0xF
	f.flipMask = 0
}
func (f *faultyLane) Commit() { f.Out = f.next }

// corrupt schedules a bit flip on the next cycle.
func (f *faultyLane) corrupt(mask uint8) { f.flipMask = mask }

func newFaultyPair(t *testing.T) (*TxConverter, *RxConverter, *faultyLane, *sim.World) {
	t.Helper()
	p := DefaultParams()
	tx := NewTxConverter(p, FlowParams{})
	rx := NewRxConverter(p, FlowParams{}, 1<<16)
	tx.Enabled, rx.Enabled = true, true
	fl := &faultyLane{in: &tx.Out}
	rx.ConnectIn(&fl.Out)
	w := sim.NewWorld()
	w.Add(tx, fl, rx)
	return tx, rx, fl, w
}

func TestFramingRecoversAfterCorruptedDataNibble(t *testing.T) {
	// A soft error in a data nibble corrupts at most that word; framing
	// (counting five nibbles from the VALID header) stays intact and all
	// later words arrive unharmed.
	tx, rx, fl, w := newFaultyPair(t)
	const total = 40
	sent, popped := 0, 0
	var words []Word
	w.Add(&sim.Func{OnEval: func() {
		if sent < total && tx.Ready() {
			if tx.Push(DataWord(uint16(0x1000 + sent))) {
				sent++
			}
		}
		if wd, ok := rx.Pop(); ok {
			words = append(words, wd)
			popped++
		}
	}})
	// Let a few words through, then hit one data nibble.
	w.RunUntil(func() bool { return popped >= 5 }, 200)
	fl.corrupt(0b0110)
	if !w.RunUntil(func() bool { return popped >= total }, 2000) {
		t.Fatalf("stream did not recover: %d/%d words", popped, total)
	}
	corrupted := 0
	for i, wd := range words {
		if wd.Data != uint16(0x1000+i) || wd.Hdr != HdrValid {
			corrupted++
		}
	}
	if corrupted > 1 {
		t.Fatalf("one flipped nibble corrupted %d words", corrupted)
	}
	if rx.Received() != total {
		t.Fatalf("received %d, want %d (no loss of framing)", rx.Received(), total)
	}
}

func TestFramingRecoversAfterCorruptedHeader(t *testing.T) {
	// Killing a header's VALID bit makes the deserializer miss that
	// packet and treat the following data nibbles as noise until the next
	// clean header; it must re-synchronize within a bounded number of
	// words and deliver everything afterwards in order.
	tx, rx, fl, w := newFaultyPair(t)
	const total = 60
	sent := 0
	var words []Word
	headerCycle := -1
	cyc := 0
	w.Add(&sim.Func{OnEval: func() {
		if sent < total && tx.Ready() {
			if tx.Push(DataWord(uint16(0x2000 + sent))) {
				sent++
			}
		}
		// Find a cycle where the lane carries a header nibble (VALID set)
		// and corrupt exactly that nibble once.
		if headerCycle < 0 && cyc > 30 && tx.Out&uint8(HdrValid) != 0 {
			headerCycle = cyc
			fl.corrupt(uint8(HdrValid))
		}
		cyc++
		if wd, ok := rx.Pop(); ok {
			words = append(words, wd)
		}
	}})
	w.Run(total*5 + 100)
	if headerCycle < 0 {
		t.Fatal("never found a header to corrupt")
	}
	if len(words) < total-3 {
		t.Fatalf("lost %d words to one header error", total-len(words))
	}
	// Everything after resynchronization is clean and in order: find the
	// longest clean tail.
	tail := 0
	for i := len(words) - 1; i > 0; i-- {
		if words[i].Data == words[i-1].Data+1 && words[i].Valid() {
			tail++
		} else {
			break
		}
	}
	if tail < total/2 {
		t.Fatalf("stream did not re-synchronize cleanly (clean tail %d)", tail)
	}
}

func TestRandomSoftErrorsNeverWedgeTheLink(t *testing.T) {
	// Property: under sporadic random lane corruption the link keeps
	// moving — the deserializer never deadlocks, and clean traffic
	// resumes after errors stop.
	rng := bitvec.NewXorShift64(31337)
	tx, rx, fl, w := newFaultyPair(t)
	sent := 0
	w.Add(&sim.Func{OnEval: func() {
		if tx.Ready() {
			if tx.Push(DataWord(uint16(sent))) {
				sent++
			}
		}
		rx.Pop()
	}})
	// Phase 1: noisy channel (1% per-cycle corruption).
	for i := 0; i < 2000; i++ {
		if rng.Bool(0.01) {
			fl.corrupt(uint8(rng.Intn(15) + 1))
		}
		w.Step()
	}
	// Phase 2: clean channel; throughput must return to line rate.
	before := rx.Received()
	w.Run(1000)
	delivered := rx.Received() - before
	if delivered < 190 { // 1000 cycles / 5 per word, minus resync slack
		t.Fatalf("post-error throughput %d words/1000 cycles, want ~200", delivered)
	}
}
