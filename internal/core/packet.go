package core

import (
	"fmt"

	"repro/internal/bitvec"
)

// Header is the 4-bit packet header of Fig. 6. The paper includes "a small
// four bits header with every data-word" so the circuit-switched network
// can carry synchronization information in-band; an idle lane drives zero,
// so the VALID bit doubles as packet framing for the deserializer.
type Header uint8

// Header flag bits.
const (
	// HdrValid marks a real packet; an idle lane transmits all-zero
	// nibbles, whose missing VALID bit keeps the deserializer idle.
	HdrValid Header = 1 << iota
	// HdrSOB marks the first word of a block (e.g. an OFDM symbol).
	HdrSOB
	// HdrEOB marks the last word of a block.
	HdrEOB
	// HdrCtl marks a control word interpreted by the tile interface
	// rather than the processing tile.
	HdrCtl

	// HeaderBits is the header width in bits.
	HeaderBits = 4
)

// String renders the header flags, e.g. "V|SOB".
func (h Header) String() string {
	if h == 0 {
		return "idle"
	}
	s := ""
	add := func(f Header, name string) {
		if h&f != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(HdrValid, "V")
	add(HdrSOB, "SOB")
	add(HdrEOB, "EOB")
	add(HdrCtl, "CTL")
	return s
}

// Word is the unit the tile interface exchanges with the network: a 16-bit
// data word plus the 4-bit header, together the 20-bit packet of Fig. 6.
type Word struct {
	// Hdr carries the synchronization flags.
	Hdr Header
	// Data is the 16-bit payload.
	Data uint16
}

// Valid reports whether the word carries the VALID flag.
func (w Word) Valid() bool { return w.Hdr&HdrValid != 0 }

// String renders the word for debugging.
func (w Word) String() string { return fmt.Sprintf("{%v %#04x}", w.Hdr, w.Data) }

// Pack returns the 20-bit wire representation: header nibble in the most
// significant position, then data nibbles D15–D12 … D3–D0 (Fig. 6).
func (w Word) Pack() uint32 {
	return uint32(w.Hdr&0xF)<<16 | uint32(w.Data)
}

// Unpack is the inverse of Pack.
func Unpack(p uint32) Word {
	return Word{Hdr: Header(p >> 16 & 0xF), Data: uint16(p)}
}

// Nibbles returns the packet as five 4-bit lane transfers, header first.
func (w Word) Nibbles() []uint8 {
	return bitvec.SplitNibblesMSB(w.Pack(), 5)
}

// FromNibbles reassembles a word from five lane transfers (header first).
// It panics if the slice does not hold exactly five nibbles.
func FromNibbles(nibs []uint8) Word {
	if len(nibs) != 5 {
		panic(fmt.Sprintf("core: packet needs 5 nibbles, got %d", len(nibs)))
	}
	return Unpack(bitvec.JoinNibblesMSB(nibs))
}

// DataWord returns a valid data word with no block flags.
func DataWord(data uint16) Word { return Word{Hdr: HdrValid, Data: data} }
