package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// txRxHarness couples a transmit converter directly to a receive converter
// (a zero-router circuit) for unit-testing the serialization protocol.
type txRxHarness struct {
	tx *TxConverter
	rx *RxConverter
	w  *sim.World
}

func newTxRx(t *testing.T, flow FlowParams, bufCap int) *txRxHarness {
	t.Helper()
	p := DefaultParams()
	h := &txRxHarness{
		tx: NewTxConverter(p, flow),
		rx: NewRxConverter(p, flow, bufCap),
		w:  sim.NewWorld(),
	}
	h.tx.Enabled = true
	h.rx.Enabled = true
	h.rx.ConnectIn(&h.tx.Out)
	h.tx.ConnectAck(&h.rx.AckOut)
	h.w.Add(h.tx, h.rx)
	return h
}

func TestSerializeDeserializeOneWord(t *testing.T) {
	h := newTxRx(t, FlowParams{}, 8)
	want := Word{Hdr: HdrValid | HdrSOB, Data: 0xCAFE}
	if !h.tx.Push(want) {
		t.Fatal("push rejected")
	}
	if !h.w.RunUntil(func() bool { return h.rx.Available() > 0 }, 20) {
		t.Fatal("word never arrived")
	}
	var got Word
	h.w.Add(&sim.Func{OnEval: func() {
		if h.rx.Available() > 0 {
			got, _ = h.rx.Pop()
		}
	}})
	h.w.Step()
	if got != want {
		t.Fatalf("received %v, want %v", got, want)
	}
	if h.tx.Sent() != 1 || h.rx.Received() != 1 {
		t.Fatalf("counters: sent=%d received=%d", h.tx.Sent(), h.rx.Received())
	}
}

func TestBackToBackThroughput(t *testing.T) {
	// A lane sustains one word per PacketNibbles() = 5 cycles — this is
	// exactly the paper's 80 Mbit/s per stream at 25 MHz (16 data bits
	// every 5 cycles).
	h := newTxRx(t, FlowParams{}, 1<<16)
	const words = 100
	sent := 0
	h.w.Add(&sim.Func{OnEval: func() {
		if sent < words && h.tx.Ready() {
			h.tx.Push(DataWord(uint16(sent)))
			sent++
		}
	}})
	cycles := 0
	for h.rx.Received() < words {
		h.w.Step()
		cycles++
		if cycles > words*6+20 {
			t.Fatalf("too slow: %d words in %d cycles", h.rx.Received(), cycles)
		}
	}
	// Steady state must be 5 cycles/word (plus small pipeline fill).
	if cycles > words*5+15 {
		t.Fatalf("sustained rate too low: %d cycles for %d words", cycles, words)
	}
}

func TestDeserializerIgnoresIdleAndSyncs(t *testing.T) {
	p := DefaultParams()
	rx := NewRxConverter(p, FlowParams{}, 8)
	rx.Enabled = true
	lane := uint8(0)
	rx.ConnectIn(&lane)
	w := sim.NewWorld()
	w.Add(rx)
	// A long idle period...
	w.Run(50)
	if rx.Received() != 0 {
		t.Fatal("idle lane produced words")
	}
	// ...then a packet, nibble by nibble.
	want := Word{Hdr: HdrValid | HdrEOB, Data: 0x1234}
	for _, nib := range want.Nibbles() {
		lane = nib
		w.Step()
	}
	lane = 0
	w.Run(2)
	if rx.Received() != 1 {
		t.Fatalf("received = %d, want 1", rx.Received())
	}
	got, ok := rx.Peek()
	if !ok || got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDeserializerDataNibblesWithValidBitDoNotConfuse(t *testing.T) {
	// Data nibbles may coincidentally carry bit 0; the deserializer must
	// count nibbles rather than re-synchronize mid-packet.
	h := newTxRx(t, FlowParams{}, 16)
	words := []Word{DataWord(0xFFFF), DataWord(0x1111), DataWord(0xF0F)}
	i := 0
	h.w.Add(&sim.Func{OnEval: func() {
		if i < len(words) && h.tx.Ready() {
			h.tx.Push(words[i])
			i++
		}
	}})
	if !h.w.RunUntil(func() bool { return int(h.rx.Received()) == len(words) }, 200) {
		t.Fatalf("only %d words arrived", h.rx.Received())
	}
	for _, want := range words {
		got, ok := h.rx.Pop()
		if !ok || got != want {
			t.Fatalf("got %v, want %v", got, want)
		}
		h.w.Step()
	}
}

func TestRoundTripPropertyRandomWords(t *testing.T) {
	// Any sequence of words survives serialization in order.
	f := func(data []uint16, hdrs []uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 32 {
			data = data[:32]
		}
		h := newTxRx(t, FlowParams{}, len(data))
		words := make([]Word, len(data))
		for i, d := range data {
			hd := Header(0)
			if i < len(hdrs) {
				hd = Header(hdrs[i] & 0xE) // random SOB/EOB/CTL flags
			}
			words[i] = Word{Hdr: HdrValid | hd, Data: d}
		}
		i := 0
		h.w.Add(&sim.Func{OnEval: func() {
			if i < len(words) && h.tx.Ready() {
				h.tx.Push(words[i])
				i++
			}
		}})
		if !h.w.RunUntil(func() bool { return int(h.rx.Received()) == len(words) },
			len(words)*10+50) {
			return false
		}
		for _, want := range words {
			got, ok := h.rx.Pop()
			if !ok || got != want {
				return false
			}
			h.w.Step()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowCounterBlocksAtZero(t *testing.T) {
	flow := FlowParams{UseAck: true, WC: 2, X: 1}
	h := newTxRx(t, flow, 2)
	pushed := 0
	h.w.Add(&sim.Func{OnEval: func() {
		if h.tx.Ready() {
			if h.tx.Push(DataWord(uint16(pushed))) {
				pushed++
			}
		}
	}})
	// Nobody consumes at the destination: the source must stop after WC
	// packets in flight.
	h.w.Run(200)
	if h.tx.Sent() != uint64(flow.WC) {
		t.Fatalf("sent %d packets with WC=%d and no consumption", h.tx.Sent(), flow.WC)
	}
	if h.rx.Dropped() != 0 {
		t.Fatalf("window failed: %d drops", h.rx.Dropped())
	}
	if h.tx.Stalled() == 0 {
		t.Fatal("source never registered a stall")
	}
}

func TestWindowCounterReplenishedByAck(t *testing.T) {
	flow := FlowParams{UseAck: true, WC: 2, X: 1}
	h := newTxRx(t, flow, 2)
	pushed, consumed := 0, 0
	const total = 20
	h.w.Add(&sim.Func{OnEval: func() {
		if pushed < total && h.tx.Ready() {
			if h.tx.Push(DataWord(uint16(pushed))) {
				pushed++
			}
		}
		if _, ok := h.rx.Pop(); ok {
			consumed++
		}
	}})
	if !h.w.RunUntil(func() bool { return consumed == total }, 2000) {
		t.Fatalf("stalled: consumed %d/%d (sent %d, wc=%d)",
			consumed, total, h.tx.Sent(), h.tx.Window())
	}
	if h.rx.Dropped() != 0 {
		t.Fatalf("drops with consuming destination: %d", h.rx.Dropped())
	}
	if h.tx.WindowViolations() != 0 {
		t.Fatalf("window violations: %d", h.tx.WindowViolations())
	}
}

func TestWindowNeverOverflowsBufferProperty(t *testing.T) {
	// The paper's invariant: with WC ≤ destination buffer capacity and
	// X ≤ WC, no destination overflow occurs regardless of the consumer's
	// timing.
	f := func(wcRaw, xRaw, consumeEvery uint8, seed uint64) bool {
		wc := int(wcRaw)%8 + 1
		x := int(xRaw)%wc + 1
		period := int(consumeEvery)%17 + 1
		flow := FlowParams{UseAck: true, WC: wc, X: x}
		h := newTxRx(t, flow, wc) // buffer exactly the window size
		pushed, cycle := 0, 0
		h.w.Add(&sim.Func{OnEval: func() {
			if h.tx.Ready() {
				if h.tx.Push(DataWord(uint16(pushed))) {
					pushed++
				}
			}
			if cycle%period == 0 {
				h.rx.Pop()
			}
			cycle++
		}})
		h.w.Run(800)
		return h.rx.Dropped() == 0 && h.tx.WindowViolations() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNonBlockingModeStreamsFreely(t *testing.T) {
	// Without the ack wire the source streams at full rate — the paper's
	// non-blocking mode where the destination is assumed to consume.
	h := newTxRx(t, FlowParams{}, 4)
	pushed := 0
	h.w.Add(&sim.Func{OnEval: func() {
		if h.tx.Ready() {
			if h.tx.Push(DataWord(uint16(pushed))) {
				pushed++
			}
		}
	}})
	h.w.Run(500)
	if h.tx.Sent() < 90 { // ~500/5 minus pipeline fill
		t.Fatalf("non-blocking source sent only %d words", h.tx.Sent())
	}
	// With nobody consuming a 4-word buffer, overflow is expected — that
	// is exactly the failure mode the window counter exists to prevent.
	if h.rx.Dropped() == 0 {
		t.Fatal("expected destination overflow without flow control")
	}
}

func TestDisabledConverterIsIdle(t *testing.T) {
	p := DefaultParams()
	tx := NewTxConverter(p, FlowParams{})
	if tx.Push(DataWord(1)) {
		t.Fatal("disabled converter accepted data")
	}
	w := sim.NewWorld()
	w.Add(tx)
	w.Run(10)
	if tx.Out != 0 || tx.Sent() != 0 {
		t.Fatal("disabled converter produced output")
	}
}

func TestFlowParamsValidate(t *testing.T) {
	bad := []FlowParams{
		{UseAck: true, WC: 0, X: 1},
		{UseAck: true, WC: 4, X: 0},
		{UseAck: true, WC: 4, X: 5}, // X > WC violates the paper's X ≤ WC
	}
	for i, f := range bad {
		if f.Validate() == nil {
			t.Errorf("case %d accepted %+v", i, f)
		}
	}
	if (FlowParams{}).Validate() != nil {
		t.Error("ack-less flow params must validate")
	}
	if DefaultFlow().Validate() != nil {
		t.Error("default flow params must validate")
	}
}

func TestConverterRejectsNonPaperFormat(t *testing.T) {
	p := Params{Ports: 5, LanesPerPort: 4, LaneWidth: 8, TileWidth: 16}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-Fig.6 format")
		}
	}()
	NewTxConverter(p, FlowParams{})
}

func TestRxBufCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero buffer")
		}
	}()
	NewRxConverter(DefaultParams(), FlowParams{}, 0)
}
