package core

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements sim.Snapshotter for the circuit-switched router
// assembly and its parts — the component side of the warm-start
// checkpoint layer. Only dynamic state is serialized: registers, staged
// commands, counters, buffers and the bound meter's accumulators.
// Everything fixed at construction time (parameters, wiring, flow
// configuration) is reproduced by rebuilding the assembly from the same
// configuration before Restore.

// Snapshot appends the configuration memory's lane selects.
func (c *Config) Snapshot(buf []byte) []byte {
	for _, s := range c.sels {
		buf = sim.AppendBool(buf, s.Enable)
		buf = sim.AppendU64(buf, uint64(s.In))
	}
	return buf
}

// Restore is the inverse of Snapshot; it returns the unread remainder.
func (c *Config) Restore(data []byte) ([]byte, error) {
	var err error
	for g := range c.sels {
		var s LaneSel
		if s.Enable, data, err = sim.ReadBool(data); err != nil {
			return nil, err
		}
		var in uint64
		if in, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		s.In = int(in)
		if s.In < 0 || s.In >= c.p.ForeignLanes() {
			return nil, fmt.Errorf("core: snapshot lane select %d out of range", s.In)
		}
		c.sels[g] = s
	}
	return data, nil
}

// Snapshot implements sim.Snapshotter for the router: output and
// acknowledgement registers, configuration memory, staged configuration
// commands, traffic statistics and the activity-tracking flags.
func (r *Router) Snapshot(buf []byte) []byte {
	for _, v := range r.Out {
		buf = append(buf, v)
	}
	for _, v := range r.AckOut {
		buf = sim.AppendBool(buf, v)
	}
	buf = r.cfg.Snapshot(buf)
	buf = sim.AppendU64(buf, uint64(len(r.cfgPending)))
	for _, cmd := range r.cfgPending {
		buf = sim.AppendU64(buf, uint64(cmd.Out))
		buf = sim.AppendBool(buf, cmd.Sel.Enable)
		buf = sim.AppendU64(buf, uint64(cmd.Sel.In))
	}
	buf = sim.AppendU64(buf, r.statsWords)
	buf = sim.AppendBool(buf, r.outDirty)
	return buf
}

// Restore implements sim.Snapshotter. The derived active-lane count is
// recomputed from the restored configuration.
func (r *Router) Restore(data []byte) ([]byte, error) {
	n := r.P.TotalLanes()
	if len(data) < n {
		return nil, fmt.Errorf("core: router snapshot truncated")
	}
	copy(r.Out, data[:n])
	data = data[n:]
	var err error
	for g := range r.AckOut {
		if r.AckOut[g], data, err = sim.ReadBool(data); err != nil {
			return nil, err
		}
	}
	if data, err = r.cfg.Restore(data); err != nil {
		return nil, err
	}
	var pending uint64
	if pending, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	r.cfgPending = r.cfgPending[:0]
	for i := uint64(0); i < pending; i++ {
		var cmd ConfigCmd
		var out, in uint64
		if out, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		if cmd.Sel.Enable, data, err = sim.ReadBool(data); err != nil {
			return nil, err
		}
		if in, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		cmd.Out, cmd.Sel.In = int(out), int(in)
		if cmd.Out < 0 || cmd.Out >= n {
			return nil, fmt.Errorf("core: snapshot staged config lane %d out of range", cmd.Out)
		}
		r.cfgPending = append(r.cfgPending, cmd)
	}
	if r.statsWords, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if r.outDirty, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	r.activeLanes = r.cfg.EnabledLanes()
	return data, nil
}

// snapshotWordPtr appends an optional staged word.
func snapshotWordPtr(buf []byte, w *Word) []byte {
	buf = sim.AppendBool(buf, w != nil)
	if w != nil {
		buf = sim.AppendU64(buf, uint64(w.Pack()))
	}
	return buf
}

// restoreWordPtr reads an optional staged word.
func restoreWordPtr(data []byte) (*Word, []byte, error) {
	ok, data, err := sim.ReadBool(data)
	if err != nil || !ok {
		return nil, data, err
	}
	p, data, err := sim.ReadU64(data)
	if err != nil {
		return nil, nil, err
	}
	w := Unpack(uint32(p))
	return &w, data, nil
}

// Snapshot implements sim.Snapshotter for the transmit converter.
func (t *TxConverter) Snapshot(buf []byte) []byte {
	buf = append(buf, t.Out)
	buf = sim.AppendBool(buf, t.Enabled)
	buf = sim.AppendU64(buf, uint64(t.shift))
	buf = sim.AppendU64(buf, uint64(t.cnt))
	buf = sim.AppendU64(buf, uint64(int64(t.wc)))
	buf = snapshotWordPtr(buf, t.pending)
	buf = snapshotWordPtr(buf, t.staged)
	buf = sim.AppendU64(buf, t.sent)
	buf = sim.AppendU64(buf, t.stalledCount)
	buf = sim.AppendU64(buf, t.wcViolations)
	return buf
}

// Restore implements sim.Snapshotter.
func (t *TxConverter) Restore(data []byte) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("core: tx snapshot truncated")
	}
	t.Out, data = data[0], data[1:]
	var err error
	if t.Enabled, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	var u uint64
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	t.shift = uint32(u)
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	t.cnt = int(u)
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	t.wc = int(int64(u))
	if t.pending, data, err = restoreWordPtr(data); err != nil {
		return nil, err
	}
	if t.staged, data, err = restoreWordPtr(data); err != nil {
		return nil, err
	}
	if t.sent, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if t.stalledCount, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if t.wcViolations, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	return data, nil
}

// Snapshot implements sim.Snapshotter for the receive converter.
func (r *RxConverter) Snapshot(buf []byte) []byte {
	buf = sim.AppendBool(buf, r.AckOut)
	buf = sim.AppendBool(buf, r.Enabled)
	buf = sim.AppendU64(buf, uint64(r.acc))
	buf = sim.AppendU64(buf, uint64(r.cnt))
	buf = sim.AppendU64(buf, uint64(len(r.buf)))
	for _, w := range r.buf {
		buf = sim.AppendU64(buf, uint64(w.Pack()))
	}
	buf = sim.AppendU64(buf, uint64(r.unacked))
	buf = sim.AppendU64(buf, uint64(r.ackHigh))
	buf = sim.AppendU64(buf, r.received)
	buf = sim.AppendU64(buf, r.dropped)
	buf = sim.AppendU64(buf, uint64(r.popN))
	return buf
}

// Restore implements sim.Snapshotter.
func (r *RxConverter) Restore(data []byte) ([]byte, error) {
	var err error
	if r.AckOut, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	if r.Enabled, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	var u uint64
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	r.acc = uint32(u)
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	r.cnt = int(u)
	var nbuf uint64
	if nbuf, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	r.buf = r.buf[:0]
	for i := uint64(0); i < nbuf; i++ {
		if u, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		r.buf = append(r.buf, Unpack(uint32(u)))
	}
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	r.unacked = int(u)
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	r.ackHigh = int(u)
	if r.received, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if r.dropped, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if u, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	r.popN = int(u)
	return data, nil
}

// Snapshot implements sim.Snapshotter for the whole assembly: the router,
// every converter, the sleep latch and — when a meter is bound — the
// meter's accumulators. The gated-clock idle cache is not serialized; it
// revalidates itself against the restored enable masks on first use.
func (a *Assembly) Snapshot(buf []byte) []byte {
	buf = a.R.Snapshot(buf)
	for _, tx := range a.Tx {
		buf = tx.Snapshot(buf)
	}
	for _, rx := range a.Rx {
		buf = rx.Snapshot(buf)
	}
	buf = sim.AppendBool(buf, a.asleep)
	buf = sim.AppendBool(buf, a.meter != nil)
	if a.meter != nil {
		buf = a.meter.Snapshot(buf)
	}
	return buf
}

// Restore implements sim.Snapshotter.
func (a *Assembly) Restore(data []byte) ([]byte, error) {
	var err error
	if data, err = a.R.Restore(data); err != nil {
		return nil, err
	}
	for _, tx := range a.Tx {
		if data, err = tx.Restore(data); err != nil {
			return nil, err
		}
	}
	for _, rx := range a.Rx {
		if data, err = rx.Restore(data); err != nil {
			return nil, err
		}
	}
	if a.asleep, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	var metered bool
	if metered, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	if metered != (a.meter != nil) {
		return nil, fmt.Errorf("core: snapshot metered=%v, assembly metered=%v", metered, a.meter != nil)
	}
	if a.meter != nil {
		if data, err = a.meter.Restore(data); err != nil {
			return nil, err
		}
	}
	a.idleFJOK = false // revalidate the gated-clock cache lazily
	return data, nil
}

var _ sim.Snapshotter = (*Assembly)(nil)
