package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/power"
	"repro/internal/stdcell"
)

// Router is the cycle-accurate model of the reconfigurable circuit-switched
// router (Fig. 4): a fully connected crossbar from the foreign input lanes
// to the registered output lanes, a configuration memory, and the reverse
// acknowledgement path. There is no buffering and no arbitration — an
// established physical channel can always be used (Section 4).
//
// Wiring model: inputs are pointers into the *registered* output storage of
// the upstream component (a neighbouring Router's Out array or a
// TxConverter's output register). Because every output is registered and
// all components commit together, reading through these pointers during
// Eval observes pre-clock-edge values regardless of evaluation order.
type Router struct {
	// P are the design-time parameters.
	P Params

	// Out holds the registered output lane values (LaneWidth bits each),
	// indexed by global lane. Downstream components point into it.
	Out []uint8
	// AckOut holds the registered reverse acknowledgements leaving the
	// router towards the upstream source, indexed by global *input* lane.
	AckOut []bool

	// in[g] points at the data source of input lane g (upstream router
	// output or local TxConverter register); nil reads as idle (0).
	in []*uint8
	// ackIn[g] points at the acknowledgement arriving alongside output
	// lane g from downstream; nil reads as false.
	ackIn []*bool

	cfg *Config
	// cfgPending holds configuration commands staged via the
	// configuration interface, applied at the next clock edge.
	cfgPending []ConfigCmd

	// next-state (computed by Eval, made visible by Commit)
	nextOut []uint8
	nextAck []bool

	// meter, when non-nil, receives this router's switching activity.
	meter *power.Meter
	lib   stdcell.Lib
	// gated enables the configuration-driven clock gating of Section 7.3:
	// output registers of disabled lanes draw no clock energy.
	gated bool
	// ownTick, when true, makes the router account clock energy for its
	// own registers each cycle. Assemblies that share a meter across a
	// router and its converters leave this on; the converters then only
	// add their own register energy.
	statsWords uint64

	// activity tracking (sim.Quiescer): a router with no configured lanes,
	// no staged configuration writes and all-idle output registers is a
	// guaranteed no-op — exactly the lanes the paper's clock gating powers
	// down. A configured router is a no-op too whenever every configured
	// input and acknowledgement wire currently shows its idle value; the
	// per-cycle poll re-checks the wires, so traffic lighting up an input
	// is caught on the cycle it appears.
	activeLanes int
	outDirty    bool
	wake        func()
}

// NewRouter returns an unconfigured router with all lanes idle.
func NewRouter(p Params) *Router {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	n := p.TotalLanes()
	return &Router{
		P:       p,
		Out:     make([]uint8, n),
		AckOut:  make([]bool, n),
		in:      make([]*uint8, n),
		ackIn:   make([]*bool, n),
		cfg:     NewConfig(p),
		nextOut: make([]uint8, n),
		nextAck: make([]bool, n),
	}
}

// ConnectIn wires input lane g to read data from src (a registered output
// of the upstream component).
func (r *Router) ConnectIn(g int, src *uint8) { r.in[g] = src }

// ConnectAckIn wires the reverse acknowledgement of output lane g to read
// from src (the upstream-facing ack register of the downstream component).
func (r *Router) ConnectAckIn(g int, src *bool) { r.ackIn[g] = src }

// Config returns the router's live configuration memory.
func (r *Router) Config() *Config { return r.cfg }

// Configure directly establishes a circuit (test and CCN fast path). The
// change is staged like a hardware configuration write and takes effect at
// the next clock edge.
func (r *Router) Configure(c Circuit) error {
	cmd, err := c.Cmd(r.P)
	if err != nil {
		return err
	}
	r.PushConfig(cmd)
	return nil
}

// Deactivate stages the deactivation of an output lane.
func (r *Router) Deactivate(out LaneID) {
	r.PushConfig(ConfigCmd{Out: r.P.Global(out), Sel: LaneSel{}})
}

// PushConfig stages a configuration command, as the BE-network
// configuration interface does; it takes effect at the next clock edge.
func (r *Router) PushConfig(cmd ConfigCmd) {
	if cmd.Out < 0 || cmd.Out >= r.P.TotalLanes() {
		panic(fmt.Sprintf("core: config for lane %d out of range", cmd.Out))
	}
	r.cfgPending = append(r.cfgPending, cmd)
	if r.wake != nil {
		r.wake()
	}
}

// SetWake implements sim.Waker: staged configuration writes re-activate a
// skipped router in the same cycle they are pushed.
func (r *Router) SetWake(fn func()) { r.wake = fn }

// Quiescent implements sim.Quiescer. It is true only when Eval+Commit
// would be a complete no-op: no configuration write is staged, the
// output registers already hold their idle values, and every configured
// output would latch the same idle value again — its selected input
// lane and its acknowledgement wire both idle. (With no circuits
// configured the crossbar ignores its inputs and the scan short-cuts.)
// An all-idle cycle records zero toggles, so skipping it is power-exact.
func (r *Router) Quiescent() bool {
	if len(r.cfgPending) != 0 || r.outDirty {
		return false
	}
	if r.activeLanes == 0 {
		return true
	}
	for g := 0; g < r.P.TotalLanes(); g++ {
		in, ok := r.cfg.InputFor(g)
		if !ok {
			continue
		}
		if r.readIn(in) != 0 {
			return false
		}
		if r.ackIn[g] != nil && *r.ackIn[g] {
			return false
		}
	}
	return true
}

// IdleTick implements sim.IdleTicker: a quiescent router records zero
// toggles and its meter cycle accounting is driven externally, so idle
// replay is a no-op, declared explicitly to satisfy the Quiescer
// contract checked by nocvet.
func (r *Router) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (r *Router) IdleWindow(n uint64) {}

// Unconfigured reports whether no circuit is configured and none is
// staged — the state in which the crossbar provably ignores every input.
func (r *Router) Unconfigured() bool {
	return r.activeLanes == 0 && len(r.cfgPending) == 0
}

// BindMeter attaches a power meter. If gated is true the router models the
// configuration-driven clock gating the paper proposes as future work;
// otherwise every register draws clock energy every cycle, matching the
// paper's measured implementation.
func (r *Router) BindMeter(m *power.Meter, lib stdcell.Lib, gated bool) {
	r.meter = m
	r.lib = lib
	r.gated = gated
}

// WordsRouted returns the number of valid header nibbles that crossed the
// crossbar, a convenience traffic statistic.
func (r *Router) WordsRouted() uint64 { return r.statsWords }

// readIn returns the current value of input lane g (0 when unconnected).
func (r *Router) readIn(g int) uint8 {
	if r.in[g] == nil {
		return 0
	}
	return *r.in[g] & r.laneMask()
}

func (r *Router) laneMask() uint8 { return uint8(1<<uint(r.P.LaneWidth) - 1) }

// Eval implements sim.Clocked: it computes the crossbar outputs and the
// reverse acknowledgement routing from the committed inputs.
func (r *Router) Eval() {
	n := r.P.TotalLanes()
	for g := 0; g < n; g++ {
		r.nextAck[g] = false
	}
	for g := 0; g < n; g++ {
		in, ok := r.cfg.InputFor(g)
		if !ok {
			r.nextOut[g] = 0
			continue
		}
		r.nextOut[g] = r.readIn(in)
		// The acknowledgement arriving with output lane g is routed back
		// to the circuit's input lane. With multicast (several outputs
		// selecting one input) acknowledgements are ORed; the window
		// counter mechanism is defined for unicast circuits.
		if r.ackIn[g] != nil && *r.ackIn[g] {
			r.nextAck[in] = true
		}
	}
}

// Commit implements sim.Clocked: it latches outputs, applies staged
// configuration writes and accounts power.
func (r *Router) Commit() {
	n := r.P.TotalLanes()

	if r.meter != nil {
		r.accountPower()
	}

	dirty := false
	for g := 0; g < n; g++ {
		if r.nextOut[g]&uint8(HdrValid) != 0 {
			// Counting header nibbles overcounts (data nibbles may have
			// bit 0 set); the converter-level statistics are exact. This
			// is only a coarse activity indicator.
			r.statsWords++
		}
		if r.nextOut[g] != 0 || r.nextAck[g] {
			dirty = true
		}
		r.Out[g] = r.nextOut[g]
		r.AckOut[g] = r.nextAck[g]
	}
	r.outDirty = dirty

	if len(r.cfgPending) > 0 {
		if r.meter != nil {
			before := r.cfg.Bits()
			for _, cmd := range r.cfgPending {
				r.cfg.Apply(cmd)
			}
			r.meter.AddToggles(power.ToggleReg, before.Hamming(r.cfg.Bits()))
		} else {
			for _, cmd := range r.cfgPending {
				r.cfg.Apply(cmd)
			}
		}
		r.cfgPending = r.cfgPending[:0]
		r.activeLanes = r.cfg.EnabledLanes()
	}
}

// accountPower records this cycle's switching activity: output register and
// link toggles, crossbar multiplexer activity and acknowledgement wires.
// Clock energy for the router's registers is recorded here too; converters
// bound to the same meter account only their own registers.
func (r *Router) accountPower() {
	n := r.P.TotalLanes()
	regFlips, linkFlips, gateFlips, ackFlips := 0, 0, 0, 0
	for g := 0; g < n; g++ {
		d := bitvec.Hamming16(uint16(r.Out[g]), uint16(r.nextOut[g]))
		if d != 0 {
			regFlips += d
			// The output register drives the inter-router link; the tile
			// port drives the short local connection to the converter.
			if r.P.LaneOf(g).Port == Tile {
				gateFlips += d
			} else {
				linkFlips += d
			}
			// Data toggles ripple through about two 2:1 stages of the
			// output's multiplexer tree (the selected path; unselected
			// subtrees are logically shielded).
			gateFlips += 2 * d
		}
		if r.AckOut[g] != r.nextAck[g] {
			ackFlips++
		}
	}
	r.meter.AddToggles(power.ToggleReg, regFlips+ackFlips)
	r.meter.AddToggles(power.ToggleLink, linkFlips+ackFlips)
	r.meter.AddToggles(power.ToggleGate, gateFlips)
	// Clock energy: the meter's Tick is driven by the assembly once per
	// cycle; see Assembly.Commit and ClockFJ.
}

// RouterRegBits returns the router's sequential cell census (excluding
// converters): per lane a LaneWidth-bit output register and a 1-bit
// acknowledgement register, plus the configuration memory.
func RouterRegBits(p Params) int {
	return p.TotalLanes()*(p.LaneWidth+1) + p.ConfigBits()
}

// ClockFJ returns the clock energy the router's registers draw this cycle.
// Ungated, every register is clocked. Gated, only the configuration memory
// and the registers of enabled lanes (output register plus the circuit's
// ack register) are clocked — the clock-gating scheme of Section 7.3 that
// uses "the configuration information of the router to switch off the
// unused lanes".
func (r *Router) ClockFJ(lib stdcell.Lib, gated bool) float64 {
	if !gated {
		return power.ClockEnergyFor(lib, RouterRegBits(r.P), 0)
	}
	active := r.P.ConfigBits() // configuration memory is always live
	for g := 0; g < r.P.TotalLanes(); g++ {
		if _, ok := r.cfg.InputFor(g); ok {
			active += r.P.LaneWidth + 1
		}
	}
	return power.ClockEnergyFor(lib, active, 0)
}
