package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// gangHarness couples k transmit converters to k receive converters
// directly (zero-router gang circuit).
type gangHarness struct {
	tx *GangTx
	rx *GangRx
	w  *sim.World
}

func newGang(t *testing.T, k int) *gangHarness {
	t.Helper()
	p := DefaultParams()
	var txs []*TxConverter
	var rxs []*RxConverter
	w := sim.NewWorld()
	for i := 0; i < k; i++ {
		tx := NewTxConverter(p, FlowParams{})
		rx := NewRxConverter(p, FlowParams{}, 64)
		tx.Enabled, rx.Enabled = true, true
		rx.ConnectIn(&tx.Out)
		w.Add(tx, rx)
		txs = append(txs, tx)
		rxs = append(rxs, rx)
	}
	return &gangHarness{tx: NewGangTx(txs), rx: NewGangRx(rxs), w: w}
}

func TestGangPreservesOrder(t *testing.T) {
	h := newGang(t, 3)
	const total = 60
	sent := 0
	h.w.Add(&sim.Func{OnEval: func() {
		for sent < total && h.tx.Ready() {
			if !h.tx.Push(DataWord(uint16(sent * 7))) {
				break
			}
			sent++
		}
	}})
	var got []Word
	h.w.Add(&sim.Func{OnEval: func() {
		for {
			w, ok := h.rx.Pop()
			if !ok {
				break
			}
			got = append(got, w)
		}
	}})
	if !h.w.RunUntil(func() bool { return len(got) == total }, 1000) {
		t.Fatalf("reassembled %d/%d words", len(got), total)
	}
	for i, w := range got {
		if w.Data != uint16(i*7) {
			t.Fatalf("word %d = %v: striping broke order", i, w)
		}
	}
	if h.tx.Sent() != total || h.rx.Received() != total || h.rx.Dropped() != 0 {
		t.Fatalf("counters: sent=%d recv=%d dropped=%d",
			h.tx.Sent(), h.rx.Received(), h.rx.Dropped())
	}
}

func TestGangMultipliesThroughput(t *testing.T) {
	// k lanes deliver k words per packet period: a 4-lane gang carries
	// 4x80 = 320 Mbit/s at 25 MHz, the UMTS aggregate of Section 3.2.
	rate := func(k int) float64 {
		h := newGang(t, k)
		sent, recv := 0, 0
		h.w.Add(&sim.Func{OnEval: func() {
			for h.tx.Ready() {
				if !h.tx.Push(DataWord(uint16(sent))) {
					break
				}
				sent++
			}
			for {
				if _, ok := h.rx.Pop(); !ok {
					break
				}
				recv++
			}
		}})
		const cycles = 1000
		h.w.Run(cycles)
		return float64(recv) / cycles
	}
	r1, r4 := rate(1), rate(4)
	if r1 < 0.19 || r1 > 0.21 {
		t.Fatalf("single lane rate %.3f words/cycle, want ~0.2", r1)
	}
	if r4 < 0.76 || r4 > 0.81 {
		t.Fatalf("4-lane gang rate %.3f words/cycle, want ~0.8", r4)
	}
}

func TestGangWidthOneDegeneratesToSingleLane(t *testing.T) {
	h := newGang(t, 1)
	if h.tx.Width() != 1 || h.rx.Width() != 1 {
		t.Fatal("width wrong")
	}
	h.tx.Push(DataWord(5))
	h.w.Run(10)
	if w, ok := h.rx.Pop(); !ok || w.Data != 5 {
		t.Fatalf("single-lane gang broken: %v %v", w, ok)
	}
}

func TestGangStrictOrderNeverSkips(t *testing.T) {
	// If the next lane in stripe order is busy, Push must refuse rather
	// than reorder onto a free lane.
	p := DefaultParams()
	lane0 := NewTxConverter(p, FlowParams{})
	lane1 := NewTxConverter(p, FlowParams{})
	lane0.Enabled, lane1.Enabled = true, true
	g := NewGangTx([]*TxConverter{lane0, lane1})
	// Occupy lane 0 directly, leaving lane 1 free.
	if !lane0.Push(DataWord(0xAA)) {
		t.Fatal("direct push refused")
	}
	if g.Push(DataWord(1)) {
		t.Fatal("gang skipped ahead onto the free lane")
	}
	if g.Sent() != 0 {
		t.Fatal("gang counted a refused word")
	}
	if !lane1.Ready() {
		t.Fatal("gang disturbed the free lane")
	}
}

func TestGangRandomizedProperty(t *testing.T) {
	// For any gang width and word count, reassembly is exact and in order.
	f := func(kRaw, nRaw uint8) bool {
		k := int(kRaw)%4 + 1
		n := int(nRaw)%80 + 1
		h := newGang(t, k)
		sent := 0
		h.w.Add(&sim.Func{OnEval: func() {
			for sent < n && h.tx.Ready() {
				if !h.tx.Push(DataWord(uint16(sent))) {
					break
				}
				sent++
			}
		}})
		var got []Word
		h.w.Add(&sim.Func{OnEval: func() {
			for {
				w, ok := h.rx.Pop()
				if !ok {
					break
				}
				got = append(got, w)
			}
		}})
		if !h.w.RunUntil(func() bool { return len(got) == n }, n*10+100) {
			return false
		}
		for i, w := range got {
			if w.Data != uint16(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGangForValidation(t *testing.T) {
	p := DefaultParams()
	a := NewAssembly(p, DefaultAssemblyOptions())
	b := NewAssembly(p, DefaultAssemblyOptions())
	if _, _, err := GangFor(a, b, []int{0, 1}, []int{0}); err == nil {
		t.Error("mismatched lane lists accepted")
	}
	if _, _, err := GangFor(a, b, nil, nil); err == nil {
		t.Error("empty gang accepted")
	}
	if _, _, err := GangFor(a, b, []int{9}, []int{0}); err == nil {
		t.Error("out-of-range tx lane accepted")
	}
	if _, _, err := GangFor(a, b, []int{0}, []int{9}); err == nil {
		t.Error("out-of-range rx lane accepted")
	}
	tx, rx, err := GangFor(a, b, []int{0, 1}, []int{2, 3})
	if err != nil || tx.Width() != 2 || rx.Width() != 2 {
		t.Fatalf("valid gang rejected: %v", err)
	}
}

func TestNewGangPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"tx": func() { NewGangTx(nil) },
		"rx": func() { NewGangRx(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
