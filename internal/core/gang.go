package core

import "fmt"

// GangTx stripes one word stream across several transmit converters in
// strict round-robin order, implementing the lane ganging the CCN uses for
// channels whose bandwidth exceeds one lane's data rate (Section 5.1: "if
// more streams are needed ... their number of lanes can be increased"; the
// HiperLAN/2 front end needs 640 Mbit/s, eight lanes at 25 MHz).
//
// Striping is deterministic — word i travels on lane i mod k — so the
// receiving GangRx can reassemble the original order without sequence
// numbers, exactly as a hardware distributor would.
type GangTx struct {
	lanes []*TxConverter
	next  int
	sent  uint64
}

// NewGangTx gangs the given converters. They must all be enabled by the
// caller (the CCN enables them when it configures the connection).
func NewGangTx(lanes []*TxConverter) *GangTx {
	if len(lanes) == 0 {
		panic("core: gang with no lanes")
	}
	return &GangTx{lanes: lanes}
}

// Width returns the number of ganged lanes.
func (g *GangTx) Width() int { return len(g.lanes) }

// Ready reports whether the next word in stripe order can be pushed.
func (g *GangTx) Ready() bool { return g.lanes[g.next].Ready() }

// Push hands the next word to the gang; it returns false if the next lane
// in stripe order cannot accept it (strict order is what keeps reassembly
// trivial, so the gang never skips ahead).
func (g *GangTx) Push(w Word) bool {
	if !g.lanes[g.next].Push(w) {
		return false
	}
	g.next = (g.next + 1) % len(g.lanes)
	g.sent++
	return true
}

// Sent returns the number of words accepted by the gang.
func (g *GangTx) Sent() uint64 { return g.sent }

// GangRx reassembles the striped stream: words are delivered in original
// order by reading the lanes round-robin, matching GangTx's distribution.
type GangRx struct {
	lanes []*RxConverter
	next  int
	recv  uint64
}

// NewGangRx gangs the given receive converters.
func NewGangRx(lanes []*RxConverter) *GangRx {
	if len(lanes) == 0 {
		panic("core: gang with no lanes")
	}
	return &GangRx{lanes: lanes}
}

// Width returns the number of ganged lanes.
func (g *GangRx) Width() int { return len(g.lanes) }

// Available reports whether the next word in stripe order has arrived.
func (g *GangRx) Available() bool { return g.lanes[g.next].Available() > 0 }

// Pop consumes the next word in original stream order; ok is false when it
// has not arrived yet. Call during the Eval phase.
func (g *GangRx) Pop() (Word, bool) {
	w, ok := g.lanes[g.next].Pop()
	if !ok {
		return Word{}, false
	}
	g.next = (g.next + 1) % len(g.lanes)
	g.recv++
	return w, true
}

// Received returns the number of reassembled words.
func (g *GangRx) Received() uint64 { return g.recv }

// Dropped sums the destination overflow counts of all lanes.
func (g *GangRx) Dropped() uint64 {
	var d uint64
	for _, l := range g.lanes {
		d += l.Dropped()
	}
	return d
}

// GangFor builds the transmit and receive gangs for a multi-lane
// connection given the assemblies at its two endpoints and the tile-lane
// indices of each lane path (first hop In.Lane, last hop Out.Lane). It is
// the glue the examples and the mesh traffic driver use on CCN-allocated
// connections.
func GangFor(src, dst *Assembly, txLanes, rxLanes []int) (*GangTx, *GangRx, error) {
	if len(txLanes) != len(rxLanes) || len(txLanes) == 0 {
		return nil, nil, fmt.Errorf("core: gang needs matching lane lists, got %d/%d",
			len(txLanes), len(rxLanes))
	}
	txs := make([]*TxConverter, len(txLanes))
	for i, l := range txLanes {
		if l < 0 || l >= len(src.Tx) {
			return nil, nil, fmt.Errorf("core: tx lane %d out of range", l)
		}
		txs[i] = src.Tx[l]
	}
	rxs := make([]*RxConverter, len(rxLanes))
	for i, l := range rxLanes {
		if l < 0 || l >= len(dst.Rx) {
			return nil, nil, fmt.Errorf("core: rx lane %d out of range", l)
		}
		rxs[i] = dst.Rx[l]
	}
	return NewGangTx(txs), NewGangRx(rxs), nil
}
