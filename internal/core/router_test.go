package core

import (
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// step runs one Eval/Commit cycle on the router alone.
func step(r *Router) { r.Eval(); r.Commit() }

func TestRouterRoutesConfiguredLane(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p)
	src := uint8(0)
	in := LaneID{Port: West, Lane: 1}
	out := LaneID{Port: East, Lane: 3}
	r.ConnectIn(p.Global(in), &src)
	if err := r.Configure(Circuit{In: in, Out: out}); err != nil {
		t.Fatal(err)
	}
	step(r) // configuration takes effect at this edge
	src = 0xB
	step(r)
	if got := r.Out[p.Global(out)]; got != 0xB {
		t.Fatalf("output lane = %#x, want 0xB", got)
	}
	// Unconfigured lanes stay idle.
	for g := 0; g < p.TotalLanes(); g++ {
		if g != p.Global(out) && r.Out[g] != 0 {
			t.Fatalf("lane %d active without configuration", g)
		}
	}
}

func TestRouterOutputIsRegistered(t *testing.T) {
	// Section 5.1: "The 20 output lanes of the crossbar are registered."
	// A change at the input must appear at the output exactly one clock
	// edge later, not combinationally.
	p := DefaultParams()
	r := NewRouter(p)
	src := uint8(0)
	r.ConnectIn(p.Global(LaneID{Port: North, Lane: 0}), &src)
	if err := r.Configure(Circuit{
		In:  LaneID{Port: North, Lane: 0},
		Out: LaneID{Port: South, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	step(r)
	src = 0x5
	outG := p.Global(LaneID{Port: South, Lane: 0})
	if r.Out[outG] != 0 {
		t.Fatal("output changed before the clock edge")
	}
	step(r)
	if r.Out[outG] != 0x5 {
		t.Fatalf("output = %#x after one edge, want 0x5", r.Out[outG])
	}
}

func TestRouterConfigStagingTiming(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p)
	src := uint8(0xF)
	r.ConnectIn(p.Global(LaneID{Port: West, Lane: 0}), &src)
	if err := r.Configure(Circuit{
		In:  LaneID{Port: West, Lane: 0},
		Out: LaneID{Port: East, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	// Before any clock edge the configuration memory is still empty.
	if r.Config().EnabledLanes() != 0 {
		t.Fatal("configuration applied combinationally")
	}
	step(r)
	if r.Config().EnabledLanes() != 1 {
		t.Fatal("configuration not applied at clock edge")
	}
}

func TestRouterMulticast(t *testing.T) {
	// Several output lanes may select the same input lane — the crossbar
	// is fully connected and collision free (Section 4).
	p := DefaultParams()
	r := NewRouter(p)
	src := uint8(0)
	in := LaneID{Port: Tile, Lane: 0}
	r.ConnectIn(p.Global(in), &src)
	outs := []LaneID{{Port: North, Lane: 0}, {Port: East, Lane: 1}, {Port: South, Lane: 2}}
	for _, o := range outs {
		if err := r.Configure(Circuit{In: in, Out: o}); err != nil {
			t.Fatal(err)
		}
	}
	step(r)
	src = 0x7
	step(r)
	for _, o := range outs {
		if r.Out[p.Global(o)] != 0x7 {
			t.Fatalf("multicast output %v = %#x", o, r.Out[p.Global(o)])
		}
	}
}

func TestRouterAckRouting(t *testing.T) {
	// The acknowledgement of a circuit travels in the reverse direction:
	// from the downstream side of the output lane back to the input lane.
	p := DefaultParams()
	r := NewRouter(p)
	src := uint8(0)
	in := LaneID{Port: Tile, Lane: 2}
	out := LaneID{Port: North, Lane: 1}
	r.ConnectIn(p.Global(in), &src)
	ack := false
	r.ConnectAckIn(p.Global(out), &ack)
	if err := r.Configure(Circuit{In: in, Out: out}); err != nil {
		t.Fatal(err)
	}
	step(r)
	ack = true
	step(r)
	if !r.AckOut[p.Global(in)] {
		t.Fatal("ack not routed back to the circuit's input lane")
	}
	ack = false
	step(r)
	if r.AckOut[p.Global(in)] {
		t.Fatal("ack register not cleared")
	}
	// No other ack outputs fired.
	for g := 0; g < p.TotalLanes(); g++ {
		if g != p.Global(in) && r.AckOut[g] {
			t.Fatalf("spurious ack on lane %d", g)
		}
	}
}

func TestRouterDeactivate(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p)
	src := uint8(0xA)
	in := LaneID{Port: West, Lane: 0}
	out := LaneID{Port: East, Lane: 0}
	r.ConnectIn(p.Global(in), &src)
	if err := r.Configure(Circuit{In: in, Out: out}); err != nil {
		t.Fatal(err)
	}
	step(r)
	step(r)
	if r.Out[p.Global(out)] != 0xA {
		t.Fatal("circuit not established")
	}
	r.Deactivate(out)
	step(r) // deactivation commits
	step(r) // output register clears
	if r.Out[p.Global(out)] != 0 {
		t.Fatal("deactivated lane still driving data")
	}
}

func TestRouterUnconnectedInputsReadIdle(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p)
	if err := r.Configure(Circuit{
		In:  LaneID{Port: North, Lane: 0},
		Out: LaneID{Port: Tile, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		step(r)
	}
	if r.Out[p.Global(LaneID{Port: Tile, Lane: 0})] != 0 {
		t.Fatal("unconnected input did not read as idle")
	}
}

func TestRouterLaneMasking(t *testing.T) {
	// Upstream registers may be wider than the lane; the crossbar only
	// passes LaneWidth bits.
	p := DefaultParams()
	r := NewRouter(p)
	src := uint8(0xFF)
	in := LaneID{Port: South, Lane: 3}
	out := LaneID{Port: North, Lane: 3}
	r.ConnectIn(p.Global(in), &src)
	if err := r.Configure(Circuit{In: in, Out: out}); err != nil {
		t.Fatal(err)
	}
	step(r)
	step(r)
	if got := r.Out[p.Global(out)]; got != 0xF {
		t.Fatalf("lane value = %#x, want masked 0xF", got)
	}
}

func TestRouterPowerAccounting(t *testing.T) {
	p := DefaultParams()
	lib := stdcell.Default013()
	d := Netlist(p, lib)
	r := NewRouter(p)
	m := power.NewMeter(d, lib, 25)
	r.BindMeter(m, lib, false)
	src := uint8(0)
	in := LaneID{Port: West, Lane: 0}
	r.ConnectIn(p.Global(in), &src)
	if err := r.Configure(Circuit{In: in, Out: LaneID{Port: East, Lane: 0}}); err != nil {
		t.Fatal(err)
	}
	step(r) // config write toggles the config registers
	if m.Toggles(power.ToggleReg) == 0 {
		t.Fatal("configuration write produced no register toggles")
	}
	base := m.Toggles(power.ToggleReg)
	// Constant data: no further toggles.
	src = 0x0
	for i := 0; i < 10; i++ {
		step(r)
	}
	if m.Toggles(power.ToggleReg) != base {
		t.Fatal("idle data produced register toggles")
	}
	// Alternating data: 4 bits flip per cycle on the output register.
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			src = 0xF
		} else {
			src = 0x0
		}
		step(r)
	}
	if m.Toggles(power.ToggleReg) <= base {
		t.Fatal("toggling data produced no register toggles")
	}
	if m.Toggles(power.ToggleLink) == 0 {
		t.Fatal("East output should charge the link wire")
	}
}

func TestRouterClockGatingEnergy(t *testing.T) {
	p := DefaultParams()
	lib := stdcell.Default013()
	r := NewRouter(p)
	idle := r.ClockFJ(lib, true)
	full := r.ClockFJ(lib, false)
	if idle >= full {
		t.Fatalf("gated idle clock %.0f fJ not below ungated %.0f fJ", idle, full)
	}
	// Gated idle still clocks the configuration memory.
	wantIdle := power.ClockEnergyFor(lib, p.ConfigBits(), 0)
	if idle != wantIdle {
		t.Fatalf("gated idle = %v, want %v (config memory only)", idle, wantIdle)
	}
	if err := r.Configure(Circuit{
		In:  LaneID{Port: West, Lane: 0},
		Out: LaneID{Port: East, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	step(r)
	oneLane := r.ClockFJ(lib, true)
	if oneLane <= idle || oneLane >= full {
		t.Fatalf("one enabled lane: %v fJ, expected between %v and %v", oneLane, idle, full)
	}
}

func TestRouterCensusConsistency(t *testing.T) {
	p := DefaultParams()
	lib := stdcell.Default013()
	if err := VerifyClockCensus(p, lib); err != nil {
		t.Fatal(err)
	}
	// Ungated per-cycle clock energy equals the netlist design's.
	r := NewRouter(p)
	behav := r.ClockFJ(lib, false)
	want := power.ClockEnergyFor(lib, RouterRegBits(p), 0)
	if behav != want {
		t.Fatalf("router clock census %v != %v", behav, want)
	}
}

func TestRouterPushConfigPanics(t *testing.T) {
	r := NewRouter(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.PushConfig(ConfigCmd{Out: 99})
}

func TestRouterInWorld(t *testing.T) {
	// Two routers connected back to back, stepped by the kernel: data
	// crosses each router in one cycle (registered outputs).
	p := DefaultParams()
	a, b := NewRouter(p), NewRouter(p)
	src := uint8(0)
	// a: West.0 -> East.0 ; link to b: West.0 ; b: West.0 -> Tile.0
	a.ConnectIn(p.Global(LaneID{Port: West, Lane: 0}), &src)
	b.ConnectIn(p.Global(LaneID{Port: West, Lane: 0}), &a.Out[p.Global(LaneID{Port: East, Lane: 0})])
	if err := a.Configure(Circuit{In: LaneID{Port: West, Lane: 0}, Out: LaneID{Port: East, Lane: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(Circuit{In: LaneID{Port: West, Lane: 0}, Out: LaneID{Port: Tile, Lane: 0}}); err != nil {
		t.Fatal(err)
	}
	w := sim.NewWorld()
	w.Add(b, a) // order must not matter
	w.Step()    // configs commit
	src = 0x9
	w.Step() // into a's output register
	w.Step() // into b's output register
	if got := b.Out[p.Global(LaneID{Port: Tile, Lane: 0})]; got != 0x9 {
		t.Fatalf("two-router pipeline output = %#x, want 0x9", got)
	}
}
