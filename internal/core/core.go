// Package core implements the paper's primary contribution: the
// reconfigurable circuit-switched Network-on-Chip router (Wolkotte et al.,
// IPDPS 2005, Section 5).
//
// A router has five bidirectional ports (one tile port, four neighbour
// ports). Each link direction is divided into independent 4-bit "lanes"
// (lane division multiplexing); each lane carries one circuit. Inside the
// router a 16×20 fully connected crossbar connects the 16 foreign input
// lanes to the 20 output lanes; output lanes are registered, so the network
// speed depends only on the delay of a single router plus one link. Which
// input feeds which output is stored in a 100-bit configuration memory
// (4-bit select + 1 activation bit per output lane) written via 10-bit
// configuration commands that arrive over the separate best-effort network.
//
// A data converter per tile port serializes a 20-bit packet — a 4-bit
// header and a 16-bit data word (Fig. 6) — onto a lane over five clock
// cycles, and deserializes in the opposite direction. Flow control is an
// acknowledgement wire per lane in the reverse direction combined with a
// window counter (Section 5.2): the source may have at most WC
// unacknowledged packets in flight and the destination acknowledges every X
// consumed packets, which prevents destination buffer overflow whenever
// WC does not exceed the buffer capacity.
//
// All components are cycle-accurate and bit-accurate; they report their
// switching activity to an optional power.Meter so the paper's power
// experiments (Figures 9 and 10) can be regenerated.
package core

import "fmt"

// Port identifies one of the router's five bidirectional ports.
type Port int

// The five ports of the paper's router: one processing-tile port and the
// four mesh neighbours.
const (
	Tile Port = iota
	North
	East
	South
	West
)

// String returns the port name.
func (p Port) String() string {
	switch p {
	case Tile:
		return "Tile"
	case North:
		return "North"
	case East:
		return "East"
	case South:
		return "South"
	case West:
		return "West"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Opposite returns the port that faces p on a neighbouring router (North ↔
// South, East ↔ West). It panics for the tile port, which has no opposite.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		panic(fmt.Sprintf("core: port %v has no opposite", p))
	}
}

// Params are the design-time parameters of the circuit-switched router
// (Section 5.1: "The width and number of lanes are adjustable parameters in
// the design").
type Params struct {
	// Ports is the number of bidirectional ports. The paper uses 5.
	Ports int
	// LanesPerPort is the number of unidirectional lanes per port per
	// direction. The paper uses 4.
	LanesPerPort int
	// LaneWidth is the data width of one lane in bits. The paper uses 4.
	LaneWidth int
	// TileWidth is the tile-interface data width in bits. The paper uses
	// 16, compatible with the packet-switched alternative.
	TileWidth int
}

// DefaultParams returns the paper's configuration: 5 ports, 4 lanes of
// 4 bits per port per direction, 16-bit tile interface.
func DefaultParams() Params {
	return Params{Ports: 5, LanesPerPort: 4, LaneWidth: 4, TileWidth: 16}
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	switch {
	case p.Ports < 2:
		return fmt.Errorf("core: need at least 2 ports, have %d", p.Ports)
	case p.LanesPerPort < 1:
		return fmt.Errorf("core: need at least 1 lane per port, have %d", p.LanesPerPort)
	case p.LaneWidth < 1 || p.LaneWidth > 16:
		return fmt.Errorf("core: lane width %d out of range 1..16", p.LaneWidth)
	case p.TileWidth < 1 || p.TileWidth > 32:
		return fmt.Errorf("core: tile width %d out of range 1..32", p.TileWidth)
	case p.TileWidth%p.LaneWidth != 0:
		return fmt.Errorf("core: tile width %d not divisible by lane width %d",
			p.TileWidth, p.LaneWidth)
	}
	return nil
}

// TotalLanes returns the number of lanes per direction through the router
// (inputs or outputs): Ports × LanesPerPort (20 in the paper).
func (p Params) TotalLanes() int { return p.Ports * p.LanesPerPort }

// ForeignLanes returns the number of crossbar inputs per output lane: all
// lanes of the other ports (16 in the paper — "20x20 is not necessary,
// because data does not have to flow back").
func (p Params) ForeignLanes() int { return (p.Ports - 1) * p.LanesPerPort }

// PacketNibbles returns the number of lane transfers per packet: the 4-bit
// header plus the data word, rounded up to whole lane transfers (5 in the
// paper: 4-bit header + 16-bit data over a 4-bit lane).
func (p Params) PacketNibbles() int {
	return (4 + p.TileWidth + p.LaneWidth - 1) / p.LaneWidth
}

// PacketBits returns the total packet size in bits (20 in the paper).
func (p Params) PacketBits() int { return p.PacketNibbles() * p.LaneWidth }

// SelBits returns the width of one crossbar select field: enough bits to
// index the foreign input lanes (4 in the paper).
func (p Params) SelBits() int {
	b := 0
	for 1<<uint(b) < p.ForeignLanes() {
		b++
	}
	return b
}

// ConfigBitsPerLane returns the configuration bits per output lane: the
// select plus the activation bit (5 in the paper).
func (p Params) ConfigBitsPerLane() int { return p.SelBits() + 1 }

// ConfigBits returns the total configuration memory size (5×20 = 100 in
// the paper).
func (p Params) ConfigBits() int { return p.ConfigBitsPerLane() * p.TotalLanes() }

// ConfigWordBits returns the size of one configuration command: output lane
// address plus the per-lane configuration (10 in the paper: "Configuration
// of 1 lane requires 10 bits").
func (p Params) ConfigWordBits() int {
	b := 0
	for 1<<uint(b) < p.TotalLanes() {
		b++
	}
	return b + p.ConfigBitsPerLane()
}

// LaneID identifies one lane of one port.
type LaneID struct {
	// Port is the lane's port.
	Port Port
	// Lane is the lane index within the port, 0..LanesPerPort-1.
	Lane int
}

// String renders the lane as e.g. "East.2".
func (l LaneID) String() string { return fmt.Sprintf("%v.%d", l.Port, l.Lane) }

// Global returns the flat lane index port×LanesPerPort+lane used by the
// crossbar and the configuration memory.
func (p Params) Global(l LaneID) int {
	if int(l.Port) < 0 || int(l.Port) >= p.Ports || l.Lane < 0 || l.Lane >= p.LanesPerPort {
		panic(fmt.Sprintf("core: lane %v out of range for %d ports × %d lanes",
			l, p.Ports, p.LanesPerPort))
	}
	return int(l.Port)*p.LanesPerPort + l.Lane
}

// LaneOf is the inverse of Global.
func (p Params) LaneOf(global int) LaneID {
	if global < 0 || global >= p.TotalLanes() {
		panic(fmt.Sprintf("core: global lane %d out of range", global))
	}
	return LaneID{Port: Port(global / p.LanesPerPort), Lane: global % p.LanesPerPort}
}

// RelIndex returns the crossbar select value that makes an output lane of
// port outPort listen to the given input lane: foreign lanes are numbered
// in increasing port order, skipping outPort. It returns an error if the
// input lane belongs to outPort itself (data never flows back out of the
// port it came in on).
func (p Params) RelIndex(outPort Port, in LaneID) (int, error) {
	if in.Port == outPort {
		return 0, fmt.Errorf("core: input %v and output port %v coincide", in, outPort)
	}
	idx := 0
	for q := 0; q < p.Ports; q++ {
		if Port(q) == outPort {
			continue
		}
		if Port(q) == in.Port {
			return idx*p.LanesPerPort + in.Lane, nil
		}
		idx++
	}
	panic(fmt.Sprintf("core: port %v out of range", in.Port))
}

// InputLane is the inverse of RelIndex: it returns the global input lane
// selected by rel at an output lane of port outPort.
func (p Params) InputLane(outPort Port, rel int) int {
	if rel < 0 || rel >= p.ForeignLanes() {
		panic(fmt.Sprintf("core: relative index %d out of range", rel))
	}
	portIdx := rel / p.LanesPerPort
	lane := rel % p.LanesPerPort
	for q := 0; q < p.Ports; q++ {
		if Port(q) == outPort {
			continue
		}
		if portIdx == 0 {
			return p.Global(LaneID{Port: Port(q), Lane: lane})
		}
		portIdx--
	}
	panic("core: unreachable")
}
