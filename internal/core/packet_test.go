package core

import (
	"testing"
	"testing/quick"
)

func TestWordPackLayout(t *testing.T) {
	// Fig. 6: header nibble in the most significant position, then
	// D15-D12 ... D3-D0.
	w := Word{Hdr: HdrValid | HdrSOB, Data: 0xABCD}
	if got := w.Pack(); got != 0x3ABCD {
		t.Fatalf("Pack = %#x, want 0x3abcd", got)
	}
	nibs := w.Nibbles()
	want := []uint8{0x3, 0xA, 0xB, 0xC, 0xD}
	for i := range want {
		if nibs[i] != want[i] {
			t.Errorf("nibble %d = %#x, want %#x", i, nibs[i], want[i])
		}
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	f := func(hdr uint8, data uint16) bool {
		w := Word{Hdr: Header(hdr & 0xF), Data: data}
		if Unpack(w.Pack()) != w {
			return false
		}
		return FromNibbles(w.Nibbles()) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromNibblesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromNibbles with 4 nibbles should panic")
		}
	}()
	FromNibbles([]uint8{1, 2, 3, 4})
}

func TestHeaderFlags(t *testing.T) {
	if !DataWord(7).Valid() {
		t.Fatal("DataWord must carry the VALID flag")
	}
	if (Word{Data: 7}).Valid() {
		t.Fatal("zero header must not be valid")
	}
	if HdrValid != 1 {
		t.Fatal("VALID must be bit 0: idle lanes drive zero and the deserializer frames on it")
	}
}

func TestHeaderString(t *testing.T) {
	cases := map[Header]string{
		0:                          "idle",
		HdrValid:                   "V",
		HdrValid | HdrSOB:          "V|SOB",
		HdrValid | HdrEOB | HdrCtl: "V|EOB|CTL",
	}
	for h, want := range cases {
		if h.String() != want {
			t.Errorf("Header(%#x).String() = %q, want %q", uint8(h), h.String(), want)
		}
	}
}

func TestWordString(t *testing.T) {
	if s := DataWord(0xBEEF).String(); s == "" {
		t.Fatal("empty word rendering")
	}
}
