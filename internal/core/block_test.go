package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func blockPair(t *testing.T) (*BlockTx, *BlockRx, *sim.World) {
	t.Helper()
	p := DefaultParams()
	tx := NewTxConverter(p, FlowParams{})
	rx := NewRxConverter(p, FlowParams{}, 1<<16)
	tx.Enabled, rx.Enabled = true, true
	rx.ConnectIn(&tx.Out)
	w := sim.NewWorld()
	w.Add(tx, rx)
	btx, brx := NewBlockTx(tx), NewBlockRx(rx)
	w.Add(&sim.Func{OnEval: func() {
		btx.Pump()
		brx.Pump()
	}})
	return btx, brx, w
}

func TestBlockRoundTrip(t *testing.T) {
	btx, brx, w := blockPair(t)
	block := []uint16{10, 20, 30, 40, 50}
	if err := btx.Start(block); err != nil {
		t.Fatal(err)
	}
	if !w.RunUntil(func() bool { return brx.BlocksReceived() == 1 }, 200) {
		t.Fatal("block never completed")
	}
	got, ok := brx.Pop()
	if !ok || len(got) != len(block) {
		t.Fatalf("block = %v", got)
	}
	for i := range block {
		if got[i] != block[i] {
			t.Fatalf("block[%d] = %d, want %d", i, got[i], block[i])
		}
	}
	if brx.FramingErrors() != 0 {
		t.Fatalf("framing errors: %d", brx.FramingErrors())
	}
	if btx.BlocksSent() != 1 {
		t.Fatalf("BlocksSent = %d", btx.BlocksSent())
	}
}

func TestBlockBackToBack(t *testing.T) {
	// OFDM symbols follow each other continuously; block boundaries must
	// survive back-to-back transmission.
	btx, brx, w := blockPair(t)
	blocks := [][]uint16{{1, 2}, {3, 4, 5}, {6}, {7, 8, 9, 10}}
	bi := 0
	w.Add(&sim.Func{OnEval: func() {
		if btx.Idle() && bi < len(blocks) {
			if err := btx.Start(blocks[bi]); err == nil {
				bi++
			}
		}
	}})
	if !w.RunUntil(func() bool { return int(brx.BlocksReceived()) == len(blocks) }, 500) {
		t.Fatalf("received %d/%d blocks", brx.BlocksReceived(), len(blocks))
	}
	for _, want := range blocks {
		got, ok := brx.Pop()
		if !ok || len(got) != len(want) {
			t.Fatalf("block %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block mismatch: %v vs %v", got, want)
			}
		}
	}
	if brx.FramingErrors() != 0 {
		t.Fatalf("framing errors: %d", brx.FramingErrors())
	}
}

func TestBlockStartErrors(t *testing.T) {
	btx, _, _ := blockPair(t)
	if err := btx.Start(nil); err == nil {
		t.Error("empty block accepted")
	}
	if err := btx.Start([]uint16{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := btx.Start([]uint16{4}); err == nil {
		t.Error("overlapping block accepted")
	}
}

func TestBlockSizesProperty(t *testing.T) {
	// Any sequence of block sizes round-trips with exact boundaries.
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 6 {
			return true
		}
		btx, brx, w := blockPair(t)
		var blocks [][]uint16
		val := uint16(1)
		for _, s := range sizes {
			n := int(s)%9 + 1
			blk := make([]uint16, n)
			for i := range blk {
				blk[i] = val
				val++
			}
			blocks = append(blocks, blk)
		}
		bi := 0
		w.Add(&sim.Func{OnEval: func() {
			if btx.Idle() && bi < len(blocks) {
				if btx.Start(blocks[bi]) == nil {
					bi++
				}
			}
		}})
		total := 0
		for _, b := range blocks {
			total += len(b)
		}
		if !w.RunUntil(func() bool { return int(brx.BlocksReceived()) == len(blocks) },
			total*8+100) {
			return false
		}
		for _, want := range blocks {
			got, ok := brx.Pop()
			if !ok || len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return brx.FramingErrors() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockNilConverterPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"tx": func() { NewBlockTx(nil) },
		"rx": func() { NewBlockRx(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
