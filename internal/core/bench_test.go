package core

import (
	"testing"

	"repro/internal/power"
	"repro/internal/stdcell"
)

// BenchmarkRouterStep measures the raw Eval/Commit rate of one router with
// all 20 lanes configured and toggling.
func BenchmarkRouterStep(b *testing.B) {
	p := DefaultParams()
	r := NewRouter(p)
	inputs := make([]uint8, p.TotalLanes())
	for g := 0; g < p.TotalLanes(); g++ {
		r.ConnectIn(g, &inputs[g])
		out := p.LaneOf(g)
		inPort := North
		if out.Port == North {
			inPort = South
		}
		if err := r.Configure(Circuit{
			In:  LaneID{Port: inPort, Lane: out.Lane},
			Out: out,
		}); err != nil {
			b.Fatal(err)
		}
	}
	r.Eval()
	r.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := range inputs {
			inputs[g] = uint8(i+g) & 0xF
		}
		r.Eval()
		r.Commit()
	}
}

// BenchmarkRouterStepMetered adds the power accounting overhead.
func BenchmarkRouterStepMetered(b *testing.B) {
	p := DefaultParams()
	lib := stdcell.Default013()
	r := NewRouter(p)
	m := power.NewMeter(Netlist(p, lib), lib, 25)
	r.BindMeter(m, lib, false)
	inputs := make([]uint8, p.TotalLanes())
	for g := 0; g < p.TotalLanes(); g++ {
		r.ConnectIn(g, &inputs[g])
	}
	if err := r.Configure(Circuit{
		In:  LaneID{Port: West, Lane: 0},
		Out: LaneID{Port: East, Lane: 0},
	}); err != nil {
		b.Fatal(err)
	}
	r.Eval()
	r.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inputs[p.Global(LaneID{Port: West, Lane: 0})] = uint8(i) & 0xF
		r.Eval()
		r.Commit()
		m.Tick()
	}
}

// BenchmarkSerialize measures packing a word into lane nibbles.
func BenchmarkSerialize(b *testing.B) {
	w := DataWord(0xA5C3)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += w.Pack()
	}
	_ = sink
}

// BenchmarkConfigEncode measures the 10-bit command encode/decode pair.
func BenchmarkConfigEncode(b *testing.B) {
	p := DefaultParams()
	cmd := ConfigCmd{Out: 13, Sel: LaneSel{Enable: true, In: 9}}
	for i := 0; i < b.N; i++ {
		enc, err := cmd.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeConfigCmd(p, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemblyStep measures a full assembly (router + 8 converters).
func BenchmarkAssemblyStep(b *testing.B) {
	a := NewAssembly(DefaultParams(), DefaultAssemblyOptions())
	if err := a.EstablishLocal(Circuit{
		In:  LaneID{Port: Tile, Lane: 0},
		Out: LaneID{Port: East, Lane: 0},
	}); err != nil {
		b.Fatal(err)
	}
	n := uint16(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Tx[0].Ready() {
			a.Tx[0].Push(DataWord(n))
			n++
		}
		a.Eval()
		a.Commit()
	}
}
