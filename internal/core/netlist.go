package core

import (
	"repro/internal/netlist"
	"repro/internal/stdcell"
)

// Block names of the circuit-switched router design, matching Table 4's
// area breakdown rows.
const (
	BlockCrossbar      = "crossbar"
	BlockConfiguration = "configuration"
	BlockDataConverter = "data converter"
)

// Netlist returns the structural netlist of the circuit-switched router,
// the reproduction's stand-in for the paper's VHDL synthesis. The register
// census of each block is shared with the behavioural model (RouterRegBits,
// ConverterRegBits), so the power meter's clock-energy accounting and the
// area roll-up describe the same hardware.
func Netlist(p Params, lib stdcell.Lib) *netlist.Design {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	d := &netlist.Design{Name: "circuit-switched router"}

	// Crossbar: per output lane a ForeignLanes:1 mux of LaneWidth bits with
	// a registered output, plus the reverse acknowledgement muxing (1 bit
	// per lane in the opposite direction) and its registers.
	xbar := netlist.Crossbar(lib, BlockCrossbar, p.ForeignLanes(), p.TotalLanes(), p.LaneWidth)
	ack := netlist.Crossbar(lib, "ack", p.ForeignLanes(), p.TotalLanes(), 1)
	ack.Name = BlockCrossbar
	d.AddBlock(xbar.Add(ack))

	// Configuration: the SelBits+1 bits per output lane (5×20 = 100 bits in
	// the paper) with their write decode.
	d.AddBlock(netlist.ConfigMemory(BlockConfiguration, p.ConfigBits()))

	// Data converter: per lane a transmit serializer and a receive
	// deserializer; census shared with the behavioural model.
	conv := netlist.Component{
		Name: BlockDataConverter,
		DFFs: ConverterRegBits(p),
		// Nibble steering, header detection and handshake logic: about
		// 3 GE per shifted bit plus 12 GE of control per converter.
		CombGE: float64(p.LanesPerPort) * (3*float64(2*p.PacketBits()) + 2*12),
	}
	d.AddBlock(conv)

	// Critical path: crossbar select decode, the ForeignLanes:1 multiplexer
	// tree and the wire span across the crossbar — the paper's "maximum
	// delay in a single router".
	d.CriticalPathFO4 = netlist.MuxTreeDepthFO4(p.ForeignLanes()) + 2.0 + 4.7

	return d
}

// LinkBandwidthGbps returns the raw bandwidth of one link direction at the
// given clock: all lanes moving LaneWidth bits per cycle (Table 4's
// "Bandwidth/link": 16 bit × 1075 MHz = 17.2 Gb/s).
func LinkBandwidthGbps(p Params, freqMHz float64) float64 {
	return float64(p.LanesPerPort*p.LaneWidth) * freqMHz * 1e6 / 1e9
}

// LaneDataRateMbps returns the usable data bandwidth of one lane at the
// given clock: TileWidth data bits per PacketNibbles cycles (the paper's
// 80 Mbit/s per stream at 25 MHz).
func LaneDataRateMbps(p Params, freqMHz float64) float64 {
	return float64(p.TileWidth) / float64(p.PacketNibbles()) * freqMHz
}
