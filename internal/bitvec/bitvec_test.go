package bitvec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestVecBasic(t *testing.T) {
	v := New(100)
	if v.Len() != 100 {
		t.Fatalf("Len = %d, want 100", v.Len())
	}
	if v.OnesCount() != 0 {
		t.Fatalf("new vector not zero: %d ones", v.OnesCount())
	}
	v.SetBit(0, true)
	v.SetBit(63, true)
	v.SetBit(64, true)
	v.SetBit(99, true)
	for _, i := range []int{0, 63, 64, 99} {
		if v.Bit(i) != 1 {
			t.Errorf("bit %d = 0, want 1", i)
		}
	}
	if v.OnesCount() != 4 {
		t.Fatalf("OnesCount = %d, want 4", v.OnesCount())
	}
	v.SetBit(63, false)
	if v.Bit(63) != 0 {
		t.Error("clearing bit 63 failed")
	}
}

func TestVecFieldRoundTrip(t *testing.T) {
	v := New(100)
	// The router's configuration memory is exactly this shape: twenty 5-bit
	// fields.
	for lane := 0; lane < 20; lane++ {
		v.SetField(lane*5, 5, uint64(lane)&0x1F)
	}
	for lane := 0; lane < 20; lane++ {
		if got := v.Field(lane*5, 5); got != uint64(lane)&0x1F {
			t.Errorf("lane %d field = %d, want %d", lane, got, lane&0x1F)
		}
	}
}

func TestVecFieldCrossesWordBoundary(t *testing.T) {
	v := New(128)
	v.SetField(60, 10, 0x3A5)
	if got := v.Field(60, 10); got != 0x3A5 {
		t.Fatalf("cross-boundary field = %#x, want 0x3a5", got)
	}
}

func TestVecHamming(t *testing.T) {
	a, b := New(70), New(70)
	a.SetBit(0, true)
	a.SetBit(69, true)
	b.SetBit(69, true)
	b.SetBit(35, true)
	if d := a.Hamming(b); d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
}

func TestVecCopyEqual(t *testing.T) {
	a := New(33)
	a.SetField(10, 8, 0xAB)
	c := a.Copy()
	if !a.Equal(c) {
		t.Fatal("copy not equal to original")
	}
	c.SetBit(0, true)
	if a.Equal(c) {
		t.Fatal("mutating copy affected original equality")
	}
	if a.Bit(0) != 0 {
		t.Fatal("copy aliases original storage")
	}
}

func TestVecString(t *testing.T) {
	v := New(5)
	v.SetBit(0, true)
	v.SetBit(4, true)
	if s := v.String(); s != "10001" {
		t.Fatalf("String = %q, want 10001", s)
	}
}

func TestVecPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative width": func() { New(-1) },
		"bit range":      func() { New(4).Bit(4) },
		"field range":    func() { New(8).Field(5, 4) },
		"field width":    func() { New(80).Field(0, 65) },
		"hamming width":  func() { New(4).Hamming(New(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNibbleSplitJoin(t *testing.T) {
	// The 20-bit lane packet: header nibble then 4 data nibbles, MSB first.
	const pkt = uint32(0x9ABCD) // header 0x9, data 0xABCD
	nibs := SplitNibblesMSB(pkt, 5)
	want := []uint8{0x9, 0xA, 0xB, 0xC, 0xD}
	for i := range want {
		if nibs[i] != want[i] {
			t.Errorf("nibble %d = %#x, want %#x", i, nibs[i], want[i])
		}
	}
	if got := JoinNibblesMSB(nibs); got != pkt {
		t.Fatalf("JoinNibblesMSB = %#x, want %#x", got, pkt)
	}
}

func TestNibbleSplitJoinProperty(t *testing.T) {
	f := func(w uint32) bool {
		w &= 0xFFFFF // 20-bit packets
		return JoinNibblesMSB(SplitNibblesMSB(w, 5)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingHelpers(t *testing.T) {
	if Hamming16(0xFFFF, 0) != 16 {
		t.Error("Hamming16 full flip != 16")
	}
	if Hamming32(0xF0F0F0F0, 0x0F0F0F0F) != 32 {
		t.Error("Hamming32 full flip != 32")
	}
	if Hamming64(0, 0) != 0 {
		t.Error("Hamming64 of equal words != 0")
	}
}

func TestXorShiftDeterminism(t *testing.T) {
	a, b := NewXorShift64(42), NewXorShift64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewXorShift64(43)
	same := 0
	a = NewXorShift64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestXorShiftZeroSeed(t *testing.T) {
	x := NewXorShift64(0)
	if x.Uint64() == 0 && x.Uint64() == 0 {
		t.Fatal("zero seed produced stuck-at-zero stream")
	}
}

func TestXorShiftFloatRange(t *testing.T) {
	x := NewXorShift64(7)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestXorShiftIntn(t *testing.T) {
	x := NewXorShift64(9)
	seen := make([]bool, 5)
	for i := 0; i < 1000; i++ {
		v := x.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("Intn never produced %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	x.Intn(0)
}

func TestFlipGenExtremes(t *testing.T) {
	// p = 0: the paper's best case transmits only zeros.
	g := NewFlipGen(16, 0, 1)
	for i := 0; i < 100; i++ {
		if g.Next() != 0 {
			t.Fatal("p=0 generator produced non-zero word")
		}
	}
	// p = 1: worst case, every bit flips every word.
	g = NewFlipGen(16, 1, 1)
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		w := g.Next()
		if bits.OnesCount64(w^prev) != 16 {
			t.Fatalf("p=1 word %d flipped %d bits, want 16", i, bits.OnesCount64(w^prev))
		}
		prev = w
	}
}

func TestFlipGenTypicalRate(t *testing.T) {
	g := NewFlipGen(16, 0.5, 123)
	prev, flips, n := uint64(0), 0, 20000
	for i := 0; i < n; i++ {
		w := g.Next()
		flips += bits.OnesCount64(w ^ prev)
		prev = w
	}
	rate := float64(flips) / float64(n*16)
	if rate < 0.48 || rate > 0.52 {
		t.Fatalf("measured flip rate %.4f, want ~0.5", rate)
	}
}

func TestFlipGenRateProperty(t *testing.T) {
	// For any p, the long-run flip fraction approaches p.
	f := func(seed uint64, pRaw uint8) bool {
		p := float64(pRaw%101) / 100
		g := NewFlipGen(16, p, seed)
		prev, flips, n := uint64(0), 0, 5000
		for i := 0; i < n; i++ {
			w := g.Next()
			flips += bits.OnesCount64(w ^ prev)
			prev = w
		}
		rate := float64(flips) / float64(n*16)
		return rate > p-0.05 && rate < p+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipGenAccessors(t *testing.T) {
	g := NewFlipGen(20, 0.25, 5)
	if g.Width() != 20 || g.FlipProb() != 0.25 {
		t.Fatalf("accessors: width=%d p=%v", g.Width(), g.FlipProb())
	}
}

func TestFlipGenPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"width 0":  func() { NewFlipGen(0, 0.5, 1) },
		"width 65": func() { NewFlipGen(65, 0.5, 1) },
		"p < 0":    func() { NewFlipGen(8, -0.1, 1) },
		"p > 1":    func() { NewFlipGen(8, 1.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReverseBits16(t *testing.T) {
	if ReverseBits16(0x8000) != 0x0001 {
		t.Fatal("ReverseBits16 failed")
	}
}
