package bitvec

// XorShift64 is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). The NoC simulations must be reproducible run to run, and we
// frequently need one independent stream per traffic source, so a tiny
// value-type PRNG is preferable to sharing a math/rand source.
//
// This is the only sanctioned randomness source in simulation code: every
// stream is constructed from an explicit seed, so a run is a pure function
// of its scenario and seed, which is what the byte-identical kernel,
// sweep-worker and idle-replay guarantees rest on. Wall-clock reads,
// global math/rand, and OS/hardware entropy are rejected in simulation
// packages by the nondeterm analyzer (cmd/nocvet), whose allowlist is
// anchored on this package (nocvet.SanctionedRNG); see
// TestXorShift64IsTheSanctionedSource.
type XorShift64 struct {
	state uint64
}

// NewXorShift64 returns a generator seeded with seed. A zero seed is
// remapped to a fixed non-zero constant because the xorshift state must
// never be zero.
func NewXorShift64(seed uint64) *XorShift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &XorShift64{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (x *XorShift64) Uint64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Uint16 returns the next 16-bit pseudo-random value.
func (x *XorShift64) Uint16() uint16 { return uint16(x.Uint64() >> 48) }

// Float64 returns a pseudo-random value in [0,1).
func (x *XorShift64) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (x *XorShift64) Bool(p float64) bool { return x.Float64() < p }

// Intn returns a pseudo-random value in [0,n). It panics if n <= 0.
func (x *XorShift64) Intn(n int) int {
	if n <= 0 {
		panic("bitvec: Intn with non-positive bound")
	}
	return int(x.Uint64() % uint64(n))
}

// FlipGen generates a sequence of fixed-width data words with a controlled
// expected bit-flip fraction between consecutive words. This is the data
// knob of the paper's traffic model (Section 6): best case p=0 transmits
// constant zeros, worst case p=1 toggles every bit each word, and the
// typical case p=0.5 is random data.
type FlipGen struct {
	rng   *XorShift64
	width int
	p     float64
	prev  uint64
}

// NewFlipGen returns a generator of width-bit words whose consecutive words
// differ in an expected fraction p of their bits. Width must be 1..64 and p
// in [0,1].
func NewFlipGen(width int, p float64, seed uint64) *FlipGen {
	if width < 1 || width > 64 {
		panic("bitvec: FlipGen width out of range")
	}
	if p < 0 || p > 1 {
		panic("bitvec: FlipGen probability out of range")
	}
	return &FlipGen{rng: NewXorShift64(seed), width: width, p: p}
}

// Next returns the next data word. The first word is 0 (idle lanes drive
// zero, and the paper's best case transmits only zeros).
func (g *FlipGen) Next() uint64 {
	var mask uint64
	switch g.p {
	case 0:
		mask = 0
	case 1:
		mask = (1 << uint(g.width)) - 1
	default:
		for i := 0; i < g.width; i++ {
			if g.rng.Bool(g.p) {
				mask |= 1 << uint(i)
			}
		}
	}
	g.prev ^= mask
	return g.prev
}

// Width returns the word width in bits.
func (g *FlipGen) Width() int { return g.width }

// FlipProb returns the configured expected flip fraction.
func (g *FlipGen) FlipProb() float64 { return g.p }
