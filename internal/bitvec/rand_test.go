package bitvec

import "testing"

// TestXorShift64IsTheSanctionedSource asserts the properties that make
// XorShift64 the single sanctioned randomness source in simulation code
// (the nondeterm analyzer's allowlist anchor): construction from an
// explicit seed fully determines the stream, equal seeds yield equal
// streams, and the zero-seed remap is itself fixed. If this contract
// ever weakens, the byte-identical replay guarantees go with it.
func TestXorShift64IsTheSanctionedSource(t *testing.T) {
	a, b := NewXorShift64(12345), NewXorShift64(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("equal seeds diverged at draw %d: %x != %x", i, av, bv)
		}
	}

	// The stream is a pure function of the seed: pin the first draws of
	// seed 1 so an accidental algorithm change cannot slip through.
	want := []uint64{0x47E4CE4B896CDD1D, 0xABCFA6A8E079651D, 0xB9D10D8FEB731F57}
	h := NewXorShift64(1)
	for i, w := range want {
		if v := h.Uint64(); v != w {
			t.Fatalf("seed-1 stream changed at draw %d: got %x, want %x", i, v, w)
		}
	}

	// Zero seeds remap to a fixed constant, never to entropy.
	z1, z2 := NewXorShift64(0), NewXorShift64(0)
	if z1.Uint64() != z2.Uint64() {
		t.Fatal("zero-seed streams differ: remap must be a constant, not entropy")
	}

	// Distinct seeds give distinct streams (independence across sources).
	if NewXorShift64(1).Uint64() == NewXorShift64(2).Uint64() {
		t.Fatal("seeds 1 and 2 produced identical first draws")
	}
}
