package bitvec

// Stream-position accessors for the warm-start checkpoint layer: a
// snapshot captures exactly where a generator is in its deterministic
// sequence, so a restored run continues the identical stream.

// State returns the generator's raw xorshift state.
func (x *XorShift64) State() uint64 { return x.state }

// SetState restores a state previously read with State. A zero value is
// remapped like a zero seed, preserving the never-zero invariant.
func (x *XorShift64) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	x.state = s
}

// State returns the flip generator's dynamic state: its RNG position and
// the previously emitted word.
func (g *FlipGen) State() (rng, prev uint64) { return g.rng.State(), g.prev }

// SetState restores a state previously read with State.
func (g *FlipGen) SetState(rng, prev uint64) {
	g.rng.SetState(rng)
	g.prev = prev
}
