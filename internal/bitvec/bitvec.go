// Package bitvec provides small bit-manipulation utilities used throughout
// the NoC models: arbitrary-width bit vectors (for configuration memories),
// nibble packing/unpacking (for the 20-bit lane packets of the
// circuit-switched router), Hamming-distance toggle counting (for the
// activity-based power estimation) and deterministic data generators with a
// controlled bit-flip rate (the traffic knob of the paper's Section 6).
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is an arbitrary-width bit vector. The zero value is an empty vector;
// use New to create one with a fixed width. Bit 0 is the least significant
// bit of word 0.
type Vec struct {
	words []uint64
	n     int
}

// New returns a zeroed bit vector of n bits. It panics if n is negative.
func New(n int) *Vec {
	if n < 0 {
		panic("bitvec: negative width")
	}
	return &Vec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the width of the vector in bits.
func (v *Vec) Len() int { return v.n }

// Bit returns bit i (0 or 1). It panics if i is out of range.
func (v *Vec) Bit(i int) uint {
	v.check(i)
	return uint(v.words[i/64]>>(uint(i)%64)) & 1
}

// SetBit sets bit i to b (true = 1).
func (v *Vec) SetBit(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		v.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Field returns the w-bit field starting at bit lo as a uint64.
// It panics if w > 64 or the field is out of range.
func (v *Vec) Field(lo, w int) uint64 {
	if w < 0 || w > 64 {
		panic("bitvec: field width out of range")
	}
	if lo < 0 || lo+w > v.n {
		panic(fmt.Sprintf("bitvec: field [%d,%d) out of range 0..%d", lo, lo+w, v.n))
	}
	var out uint64
	for i := 0; i < w; i++ {
		out |= uint64(v.Bit(lo+i)) << uint(i)
	}
	return out
}

// SetField stores the low w bits of val into the field starting at bit lo.
func (v *Vec) SetField(lo, w int, val uint64) {
	if w < 0 || w > 64 {
		panic("bitvec: field width out of range")
	}
	if lo < 0 || lo+w > v.n {
		panic(fmt.Sprintf("bitvec: field [%d,%d) out of range 0..%d", lo, lo+w, v.n))
	}
	for i := 0; i < w; i++ {
		v.SetBit(lo+i, val>>uint(i)&1 == 1)
	}
}

// OnesCount returns the number of set bits.
func (v *Vec) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Hamming returns the number of differing bits between v and o.
// It panics if the widths differ.
func (v *Vec) Hamming(o *Vec) int {
	if v.n != o.n {
		panic("bitvec: width mismatch in Hamming")
	}
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(v.words[i] ^ o.words[i])
	}
	return c
}

// Copy returns a deep copy of v.
func (v *Vec) Copy() *Vec {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and o have the same width and contents.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector MSB-first as a binary string, for debugging.
func (v *Vec) String() string {
	var b strings.Builder
	for i := v.n - 1; i >= 0; i-- {
		if v.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: bit %d out of range 0..%d", i, v.n-1))
	}
}

// Hamming16 returns the number of differing bits between two 16-bit words.
func Hamming16(a, b uint16) int { return bits.OnesCount16(a ^ b) }

// Hamming32 returns the number of differing bits between two 32-bit words.
func Hamming32(a, b uint32) int { return bits.OnesCount32(a ^ b) }

// Hamming64 returns the number of differing bits between two 64-bit words.
func Hamming64(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// Nibble extracts 4-bit nibble i (0 = least significant) from w.
func Nibble(w uint32, i int) uint8 {
	return uint8(w >> (uint(i) * 4) & 0xF)
}

// SplitNibblesMSB splits the low n*4 bits of w into n nibbles, most
// significant nibble first. The circuit-switched lane transmits packets MSB
// nibble first (header, then D15-D12, …, D3-D0).
func SplitNibblesMSB(w uint32, n int) []uint8 {
	out := make([]uint8, n)
	for i := 0; i < n; i++ {
		out[i] = Nibble(w, n-1-i)
	}
	return out
}

// JoinNibblesMSB is the inverse of SplitNibblesMSB: it joins nibbles given
// most significant first into a single word.
func JoinNibblesMSB(nibs []uint8) uint32 {
	var w uint32
	for _, nb := range nibs {
		w = w<<4 | uint32(nb&0xF)
	}
	return w
}

// ReverseBits16 reverses the bit order of a 16-bit word.
func ReverseBits16(w uint16) uint16 { return bits.Reverse16(w) }
