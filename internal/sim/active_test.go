package sim

import (
	"fmt"
	"testing"
)

// quietPulse is a quiescent, self-scheduled pulse: inert until cycle at,
// where it drives its registered output to 1 for one cycle, then inert
// forever. The shape of a scheduled traffic burst, and the canonical
// upstream for parking tests: it commits exactly twice (raise, lower).
type quietPulse struct {
	out, next int
	at        uint64
	world     *World
	idles     uint64
	windows   uint64
}

func (p *quietPulse) Eval() {
	p.next = 0
	if p.world.Cycle() == p.at {
		p.next = 1
	}
}
func (p *quietPulse) Commit() {}
func (p *quietPulse) Quiescent() bool {
	c := p.world.Cycle()
	return !(c == p.at || c == p.at+1)
}
func (p *quietPulse) IdleTick()           { p.idles++ }
func (p *quietPulse) IdleWindow(n uint64) { p.windows += n }
func (p *quietPulse) NextEvent() (uint64, bool) {
	if c := p.world.Cycle(); c <= p.at {
		return p.at, true
	} else if c == p.at+1 {
		return c, true
	}
	return 0, false
}

// commitPulse is quietPulse with the output actually latched (split so
// Commit stays trivial to reason about in the quiescence predicate).
type commitPulse struct{ quietPulse }

func (p *commitPulse) Commit() { p.out = p.next }

// activeWatcher observes an upstream register; quiescent while it reads
// zero. Parked variants declare the upstream with DependsOn.
type activeWatcher struct {
	src     *int
	seen    int
	staged  int
	idles   uint64
	windows uint64
}

func (w *activeWatcher) Eval() {
	w.staged = w.seen
	if *w.src != 0 {
		w.staged++
	}
}
func (w *activeWatcher) Commit()             { w.seen = w.staged }
func (w *activeWatcher) Quiescent() bool     { return *w.src == 0 }
func (w *activeWatcher) IdleTick()           { w.idles++ }
func (w *activeWatcher) IdleWindow(n uint64) { w.windows += n }

// TestActiveKernelEquivalenceChain runs a commit-propagation chain —
// self-scheduled pulse, watcher woken purely by the upstream commit —
// under all four kernels and demands identical observable state and
// identical eval/skip counters on every cycle.
func TestActiveKernelEquivalenceChain(t *testing.T) {
	build := func(k Kernel) (*World, *commitPulse, *activeWatcher) {
		w := NewWorld(WithKernel(k))
		p := &commitPulse{quietPulse{at: 40}}
		p.world = w
		wt := &activeWatcher{src: &p.out}
		w.Add(p, wt)
		w.DependsOn(p)
		w.DependsOn(wt, p)
		return w, p, wt
	}
	type snap struct {
		seen         int
		evals, skips uint64
		cycle        uint64
	}
	run := func(k Kernel) []snap {
		w, _, wt := build(k)
		var out []snap
		for i := 0; i < 100; i++ {
			w.Step()
			e0, s0 := w.ComponentActivity(0)
			e1, s1 := w.ComponentActivity(1)
			out = append(out, snap{wt.seen, e0 + e1, s0 + s1, w.Cycle()})
			if e0+e1 != w.Evals() || s0+s1 != w.Skips() {
				t.Fatalf("%v cycle %d: per-component (%d,%d) vs world (%d,%d)",
					k, i, e0+e1, s0+s1, w.Evals(), w.Skips())
			}
		}
		return out
	}
	naive := run(KernelNaive)
	ref := run(KernelGated)
	for i := range ref {
		// Observable state matches the naive kernel; the eval/skip split
		// differs by design (naive never skips).
		if ref[i].seen != naive[i].seen || ref[i].cycle != naive[i].cycle {
			t.Fatalf("gated diverged from naive at cycle %d: %+v vs %+v", i, ref[i], naive[i])
		}
	}
	for _, k := range []Kernel{KernelEvent, KernelActive} {
		got := run(k)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%v diverged at cycle %d: %+v vs gated %+v", k, i, got[i], ref[i])
			}
		}
	}
}

// TestActiveKernelParksDeclaredComponents: in a world of declared inert
// components the active list drains, Parked() reports it, fast-forward
// still engages, and the deferred idle bookkeeping settles to exactly
// the elapsed cycles when Run returns.
func TestActiveKernelParksDeclaredComponents(t *testing.T) {
	w := NewWorld(WithKernel(KernelActive))
	comps := make([]*tickerComp, 8)
	for i := range comps {
		comps[i] = &tickerComp{quiet: true}
		w.Add(comps[i])
		w.DependsOn(comps[i])
	}
	w.Run(1000)
	if w.Cycle() != 1000 {
		t.Fatalf("cycle = %d", w.Cycle())
	}
	if w.Parked() != len(comps) {
		t.Fatalf("Parked = %d, want %d", w.Parked(), len(comps))
	}
	for i, c := range comps {
		if c.total() != 1000 {
			t.Fatalf("comp %d bookkeeping covers %d of 1000 cycles", i, c.total())
		}
	}
	if w.Skips() != 8000 || w.Evals() != 0 {
		t.Fatalf("skips=%d evals=%d, want 8000/0", w.Skips(), w.Evals())
	}
	// A parked world polls each component at most a handful of times
	// (until it parks), not once per cycle.
	if w.Polls() > 100 {
		t.Fatalf("Polls = %d; parked components are still being polled", w.Polls())
	}
}

// TestActiveKernelTimedUnpark: a parked Timed component is woken by its
// own cached NextEvent at exactly the right cycle.
func TestActiveKernelTimedUnpark(t *testing.T) {
	w := NewWorld(WithKernel(KernelActive))
	c := &timedComp{world: w, due: 700}
	w.Add(c)
	w.DependsOn(c)
	w.Run(2000)
	if c.fired != 1 {
		t.Fatalf("timed component fired %d times, want 1", c.fired)
	}
	if c.total() != 2000 {
		t.Fatalf("bookkeeping covers %d of 2000 cycles", c.total())
	}
	if w.Activations() == 0 {
		t.Fatal("component never unparked")
	}
}

// TestActiveKernelWakeUnparks: a staging mutator invoked during the Eval
// phase unparks its parked target and the staged value commits on the
// same clock edge as under the naive kernel; a mutator invoked between
// cycles is observed on the next cycle, also like the naive kernel.
func TestActiveKernelWakeUnparks(t *testing.T) {
	for _, k := range []Kernel{KernelNaive, KernelGated, KernelEvent, KernelActive} {
		s := &sleeper{}
		w := NewWorld(WithKernel(k))
		w.Add(s)
		w.DependsOn(s)
		w.Add(&Func{OnEval: func() {
			if w.Cycle() == 3 {
				s.Set(42)
			}
		}})
		for i := 0; i < 3; i++ {
			w.Step()
		}
		if s.cur != 0 {
			t.Fatalf("%v: early commit: cur=%d", k, s.cur)
		}
		w.Step()
		if s.cur != 42 {
			t.Fatalf("%v: staged value not committed on the wake cycle: cur=%d", k, s.cur)
		}
		// Between-cycles mutation: the wake arrives outside the Eval
		// phase and must be honoured on the next cycle.
		s.Set(77)
		w.Step()
		if s.cur != 77 {
			t.Fatalf("%v: between-cycle staged value not committed: cur=%d", k, s.cur)
		}
	}
}

// TestActiveKernelTimerUnparksAll: a WakeAt timer forces its cycle to be
// a real poll of every parked component.
func TestActiveKernelTimerUnparksAll(t *testing.T) {
	w := NewWorld(WithKernel(KernelActive))
	c := &tickerComp{quiet: true}
	w.Add(c)
	w.DependsOn(c)
	if err := w.WakeAt(500); err != nil {
		t.Fatal(err)
	}
	w.Run(1000)
	if w.Activations() == 0 {
		t.Fatal("timer did not unpark the parked component")
	}
	if c.total() != 1000 {
		t.Fatalf("bookkeeping covers %d of 1000 cycles", c.total())
	}
	if n := w.PendingTimers(); n != 0 {
		t.Fatalf("timer still pending: %d", n)
	}
}

// TestActiveKernelRunUntilSettled: RunUntil evaluates its predicate on
// every cycle with all parked bookkeeping settled, so a predicate
// reading counters or component state observes exactly what the gated
// kernel would show.
func TestActiveKernelRunUntilSettled(t *testing.T) {
	w := NewWorld(WithKernel(KernelActive))
	c := &tickerComp{quiet: true}
	w.Add(c)
	w.DependsOn(c)
	checks := 0
	ok := w.RunUntil(func() bool {
		checks++
		if got, want := c.total(), w.Cycle(); got != want {
			t.Fatalf("cycle %d: settled bookkeeping covers %d cycles", want, got)
		}
		if w.Skips() != w.Cycle() {
			t.Fatalf("cycle %d: Skips = %d", w.Cycle(), w.Skips())
		}
		return w.Cycle() >= 50
	}, 200)
	if !ok || checks != 50 {
		t.Fatalf("ok=%v checks=%d, want true/50", ok, checks)
	}
}

// TestAddMidRun: components Added after a run has started — including
// from inside the Eval phase — join on the next cycle boundary with
// working wake closures, under every kernel.
func TestAddMidRun(t *testing.T) {
	for _, k := range []Kernel{KernelNaive, KernelGated, KernelEvent, KernelActive} {
		t.Run(k.String(), func(t *testing.T) {
			w := NewWorld(WithKernel(k))
			base := &counter{}
			w.Add(base)
			w.Run(5)

			// Add between runs: must behave like a fresh component.
			late := &sleeper{}
			w.Add(late)
			w.DependsOn(late)

			// Add from inside the Eval phase: the kernel must not commit
			// the new component this cycle (it was never evaluated).
			var mid *sleeper
			w.Add(&Func{OnEval: func() {
				switch w.Cycle() {
				case 7:
					mid = &sleeper{}
					w.Add(mid)
					w.DependsOn(mid)
				case 9:
					late.Set(1)
					mid.Set(2)
				}
			}})
			w.Run(10)
			if base.cur != 15 {
				t.Fatalf("base counter = %d, want 15", base.cur)
			}
			if late.cur != 1 || mid.cur != 2 {
				t.Fatalf("staged values lost: late=%d mid=%d", late.cur, mid.cur)
			}
			// Under the skipping kernels the wake closure produced exactly
			// one commit each, on the staging cycle. (The naive kernel
			// commits every cycle a component exists, by design.)
			if k != KernelNaive && (late.commit != 1 || mid.commit != 1) {
				t.Fatalf("commits late=%d mid=%d, want 1/1", late.commit, mid.commit)
			}
		})
	}
}

// TestActiveKernelParallelismIdentical builds a world large enough to
// engage the sharded sweep (>= parallelMinActive active components) with
// commit-driven wake chains and mutator-driven wake chains, and demands
// byte-identical component state and counters across parallelism 1, 2
// and 8 — and against the gated kernel.
func TestActiveKernelParallelismIdentical(t *testing.T) {
	const nPairs = 300 // 600 components: above the parallel threshold
	type world struct {
		w        *World
		watchers []*activeWatcher
		sleepers []*sleeper
	}
	build := func(k Kernel, par int) *world {
		wd := &world{w: NewWorld(WithKernel(k), WithParallelism(par))}
		for i := 0; i < nPairs; i++ {
			p := &commitPulse{quietPulse{at: uint64(10 + i%37)}}
			p.world = wd.w
			wt := &activeWatcher{src: &p.out}
			wd.w.Add(p, wt)
			wd.w.DependsOn(p)
			wd.w.DependsOn(wt, p)
			wd.watchers = append(wd.watchers, wt)
		}
		// Mutator-driven chains: a stimulus stages into parked sleepers
		// at staggered cycles, exercising the wake queue under shards.
		for i := 0; i < 64; i++ {
			s := &sleeper{}
			wd.w.Add(s)
			wd.w.DependsOn(s)
			wd.sleepers = append(wd.sleepers, s)
			at, v := uint64(20+i), i+1
			wd.w.Add(&Func{OnEval: func() {
				if wd.w.Cycle() == at {
					s.Set(v)
				}
			}})
		}
		return wd
	}
	fingerprint := func(wd *world) string {
		sum := 0
		for _, wt := range wd.watchers {
			sum += wt.seen
		}
		vals := 0
		for _, s := range wd.sleepers {
			vals += s.cur
		}
		return fmt.Sprintf("seen=%d vals=%d evals=%d skips=%d cycle=%d",
			sum, vals, wd.w.Evals(), wd.w.Skips(), wd.w.Cycle())
	}
	run := func(k Kernel, par int) string {
		wd := build(k, par)
		wd.w.Run(200)
		return fingerprint(wd)
	}
	ref := run(KernelGated, 1)
	for _, par := range []int{1, 2, 8} {
		if got := run(KernelActive, par); got != ref {
			t.Fatalf("parallelism %d diverged:\n  active: %s\n  gated:  %s", par, got, ref)
		}
	}
}

// TestDependsOnUnregisteredPanics: declaring dependencies for a
// component the world has never seen is a wiring bug and fails fast.
func TestDependsOnUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w := NewWorld()
	w.DependsOn(&counter{})
}
