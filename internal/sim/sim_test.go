package sim

import "testing"

// counter is a toy clocked component: a register that increments each cycle.
type counter struct {
	cur, next int
}

func (c *counter) Eval()   { c.next = c.cur + 1 }
func (c *counter) Commit() { c.cur = c.next }

// follower registers the value of another counter; with correct two-phase
// semantics it lags by exactly one cycle.
type follower struct {
	src       *counter
	cur, next int
}

func (f *follower) Eval()   { f.next = f.src.cur }
func (f *follower) Commit() { f.cur = f.next }

func TestTwoPhaseSemantics(t *testing.T) {
	c := &counter{}
	f := &follower{src: c}
	// Deliberately add the follower first: order must not matter.
	w := NewWorld()
	w.Add(f, c)
	for i := 1; i <= 10; i++ {
		w.Step()
		if c.cur != i {
			t.Fatalf("cycle %d: counter = %d", i, c.cur)
		}
		if f.cur != i-1 {
			t.Fatalf("cycle %d: follower = %d, want %d (one-cycle lag)", i, f.cur, i-1)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	run := func(reversed bool) int {
		c := &counter{}
		f := &follower{src: c}
		w := NewWorld()
		if reversed {
			w.Add(c, f)
		} else {
			w.Add(f, c)
		}
		w.Run(100)
		return f.cur
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("registration order changed behaviour: %d vs %d", a, b)
	}
}

func TestRunAndCycle(t *testing.T) {
	w := NewWorld()
	c := &counter{}
	w.Add(c)
	w.Run(42)
	if w.Cycle() != 42 {
		t.Fatalf("Cycle = %d", w.Cycle())
	}
	if c.cur != 42 {
		t.Fatalf("counter = %d", c.cur)
	}
	if w.Components() != 1 {
		t.Fatalf("Components = %d", w.Components())
	}
}

func TestRunUntil(t *testing.T) {
	w := NewWorld()
	c := &counter{}
	w.Add(c)
	if !w.RunUntil(func() bool { return c.cur >= 7 }, 100) {
		t.Fatal("RunUntil did not satisfy predicate")
	}
	if c.cur != 7 {
		t.Fatalf("stopped at %d, want 7", c.cur)
	}
	if w.RunUntil(func() bool { return c.cur >= 1000 }, 10) {
		t.Fatal("RunUntil claimed success it cannot have had")
	}
}

func TestAddNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil component")
		}
	}()
	NewWorld().Add(nil)
}

func TestFuncComponent(t *testing.T) {
	evals, commits := 0, 0
	w := NewWorld()
	w.Add(&Func{OnEval: func() { evals++ }, OnCommit: func() { commits++ }})
	w.Add(&Func{}) // nil callbacks must be tolerated
	w.Run(5)
	if evals != 5 || commits != 5 {
		t.Fatalf("evals=%d commits=%d, want 5/5", evals, commits)
	}
}

func TestEvalSeesPreEdgeState(t *testing.T) {
	// During Eval of any component, no other component has committed yet.
	c := &counter{}
	var observed []int
	probe := &Func{OnEval: func() { observed = append(observed, c.cur) }}
	w := NewWorld()
	w.Add(c, probe)
	w.Run(3)
	want := []int{0, 1, 2}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("probe saw %v, want %v", observed, want)
		}
	}
}
