package sim

import "testing"

// counter is a toy clocked component: a register that increments each cycle.
type counter struct {
	cur, next int
}

func (c *counter) Eval()   { c.next = c.cur + 1 }
func (c *counter) Commit() { c.cur = c.next }

// follower registers the value of another counter; with correct two-phase
// semantics it lags by exactly one cycle.
type follower struct {
	src       *counter
	cur, next int
}

func (f *follower) Eval()   { f.next = f.src.cur }
func (f *follower) Commit() { f.cur = f.next }

func TestTwoPhaseSemantics(t *testing.T) {
	c := &counter{}
	f := &follower{src: c}
	// Deliberately add the follower first: order must not matter.
	w := NewWorld()
	w.Add(f, c)
	for i := 1; i <= 10; i++ {
		w.Step()
		if c.cur != i {
			t.Fatalf("cycle %d: counter = %d", i, c.cur)
		}
		if f.cur != i-1 {
			t.Fatalf("cycle %d: follower = %d, want %d (one-cycle lag)", i, f.cur, i-1)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	run := func(reversed bool) int {
		c := &counter{}
		f := &follower{src: c}
		w := NewWorld()
		if reversed {
			w.Add(c, f)
		} else {
			w.Add(f, c)
		}
		w.Run(100)
		return f.cur
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("registration order changed behaviour: %d vs %d", a, b)
	}
}

func TestRunAndCycle(t *testing.T) {
	w := NewWorld()
	c := &counter{}
	w.Add(c)
	w.Run(42)
	if w.Cycle() != 42 {
		t.Fatalf("Cycle = %d", w.Cycle())
	}
	if c.cur != 42 {
		t.Fatalf("counter = %d", c.cur)
	}
	if w.Components() != 1 {
		t.Fatalf("Components = %d", w.Components())
	}
}

func TestRunUntil(t *testing.T) {
	w := NewWorld()
	c := &counter{}
	w.Add(c)
	if !w.RunUntil(func() bool { return c.cur >= 7 }, 100) {
		t.Fatal("RunUntil did not satisfy predicate")
	}
	if c.cur != 7 {
		t.Fatalf("stopped at %d, want 7", c.cur)
	}
	if w.RunUntil(func() bool { return c.cur >= 1000 }, 10) {
		t.Fatal("RunUntil claimed success it cannot have had")
	}
}

func TestAddNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil component")
		}
	}()
	NewWorld().Add(nil)
}

// sleeper is a quiescer with a Push/Inject-style staging mutator: Set
// stages a value during the Eval phase, Commit latches it. IdleTick counts
// the cycles the kernel skipped.
type sleeper struct {
	cur    int
	staged *int
	idle   uint64
	commit uint64
	wake   func()
}

func (s *sleeper) Eval() {}
func (s *sleeper) Commit() {
	s.commit++
	if s.staged != nil {
		s.cur = *s.staged
		s.staged = nil
	}
}
func (s *sleeper) Quiescent() bool   { return s.staged == nil }
func (s *sleeper) IdleTick()         { s.idle++ }
func (s *sleeper) SetWake(fn func()) { s.wake = fn }
func (s *sleeper) Set(v int) {
	cp := v
	s.staged = &cp
	if s.wake != nil {
		s.wake()
	}
}

// TestWakeOnStagedMutation: a component already skipped this cycle must be
// re-activated by a staging mutator invoked later in the Eval phase, so the
// staged value commits on the same clock edge as under the naive kernel.
func TestWakeOnStagedMutation(t *testing.T) {
	for _, k := range []Kernel{KernelGated, KernelNaive} {
		s := &sleeper{}
		w := NewWorld(WithKernel(k))
		w.Add(s) // before the stimulus: its Eval slot passes first
		w.Add(&Func{OnEval: func() {
			if w.Cycle() == 3 {
				s.Set(42)
			}
		}})
		for i := 0; i < 3; i++ {
			w.Step()
		}
		if s.cur != 0 {
			t.Fatalf("%v: early commit: cur=%d", k, s.cur)
		}
		w.Step() // cycle 3: Set during Eval, value must commit this edge
		if s.cur != 42 {
			t.Fatalf("%v: staged value not committed on the wake cycle: cur=%d", k, s.cur)
		}
	}
}

// TestIdleTickEveryskippedCycle: skipped cycles run IdleTick instead of
// Commit, once per cycle, and active cycles run Commit.
func TestIdleTickEverySkippedCycle(t *testing.T) {
	s := &sleeper{}
	w := NewWorld() // gated by default
	w.Add(s)
	w.Add(&Func{OnEval: func() {
		if w.Cycle() == 5 {
			s.Set(1)
		}
	}})
	w.Run(10)
	if s.commit != 1 {
		t.Fatalf("commits = %d, want 1 (the wake cycle)", s.commit)
	}
	if s.idle != 9 {
		t.Fatalf("idle ticks = %d, want 9", s.idle)
	}
	if w.Skips() != 9 || w.Evals() != 10+1 {
		// 10 Func evals + 1 sleeper eval.
		t.Fatalf("skips=%d evals=%d", w.Skips(), w.Evals())
	}
}

// pulse drives its registered output to 1 for exactly one cycle.
type pulse struct {
	out, next int
	at        uint64
	n         uint64
}

func (p *pulse) Eval() {
	p.next = 0
	if p.n == p.at {
		p.next = 1
	}
}
func (p *pulse) Commit() { p.out = p.next; p.n++ }

// watcher counts nonzero observations of a neighbour's registered output.
// It is woken purely by the Quiescent poll seeing the neighbour's commit —
// no explicit wake call.
type watcher struct {
	src    *int
	seen   int
	staged int
}

func (w *watcher) Eval() {
	w.staged = w.seen
	if *w.src != 0 {
		w.staged++
	}
}
func (w *watcher) Commit()         { w.seen = w.staged }
func (w *watcher) Quiescent() bool { return *w.src == 0 }

// TestNeighbourCommitWakes: a quiescent component is woken by a
// neighbour's commit making its input non-idle, on exactly the cycle the
// naive kernel would have processed it.
func TestNeighbourCommitWakes(t *testing.T) {
	run := func(k Kernel) (*World, *watcher) {
		p := &pulse{at: 5}
		wt := &watcher{src: &p.out}
		w := NewWorld(WithKernel(k))
		w.Add(p)
		w.Add(wt)
		return w, wt
	}
	wg, g := run(KernelGated)
	wn, n := run(KernelNaive)
	for i := 0; i < 12; i++ {
		wg.Step()
		wn.Step()
		if g.seen != n.seen {
			t.Fatalf("cycle %d: gated saw %d, naive saw %d", i, g.seen, n.seen)
		}
	}
	if g.seen != 1 {
		t.Fatalf("watcher saw %d pulses, want 1", g.seen)
	}
	if wg.Skips() == 0 {
		t.Fatal("gated kernel never skipped the watcher")
	}
}

// TestRunUntilFiresOnWakeCycle: the predicate must observe a wake-cycle
// event on the cycle it happens, even when the waking component had been
// quiescent for the whole run up to that point.
func TestRunUntilFiresOnWakeCycle(t *testing.T) {
	const at = 7
	p := &pulse{at: at}
	wt := &watcher{src: &p.out}
	w := NewWorld()
	w.Add(p)
	w.Add(wt)
	if !w.RunUntil(func() bool { return wt.seen > 0 }, 100) {
		t.Fatal("RunUntil missed the wake event")
	}
	// The pulse is registered at the end of cycle `at` and observed during
	// cycle at+1; RunUntil must stop right after that commit.
	if got, want := w.Cycle(), uint64(at+2); got != want {
		t.Fatalf("RunUntil stopped at cycle %d, want %d", got, want)
	}
}

// TestFuncNeverSkipped: monitors and stimulus wrapped in Func run every
// cycle under the gated kernel, even in an otherwise fully quiescent
// world.
func TestFuncNeverSkipped(t *testing.T) {
	s := &sleeper{}
	evals, commits := 0, 0
	w := NewWorld()
	w.Add(s)
	w.Add(&Func{OnEval: func() { evals++ }, OnCommit: func() { commits++ }})
	w.Run(50)
	if evals != 50 || commits != 50 {
		t.Fatalf("monitor ran %d/%d cycles, want 50/50", evals, commits)
	}
	if s.idle != 50 {
		t.Fatalf("sleeper idled %d cycles, want 50", s.idle)
	}
}

func TestFuncComponent(t *testing.T) {
	evals, commits := 0, 0
	w := NewWorld()
	w.Add(&Func{OnEval: func() { evals++ }, OnCommit: func() { commits++ }})
	w.Add(&Func{}) // nil callbacks must be tolerated
	w.Run(5)
	if evals != 5 || commits != 5 {
		t.Fatalf("evals=%d commits=%d, want 5/5", evals, commits)
	}
}

func TestEvalSeesPreEdgeState(t *testing.T) {
	// During Eval of any component, no other component has committed yet.
	c := &counter{}
	var observed []int
	probe := &Func{OnEval: func() { observed = append(observed, c.cur) }}
	w := NewWorld()
	w.Add(c, probe)
	w.Run(3)
	want := []int{0, 1, 2}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("probe saw %v, want %v", observed, want)
		}
	}
}
