package sim

import "fmt"

// Divided wraps a clocked component so it runs at the world clock divided
// by N: its Eval/Commit fire on every Nth world cycle. This models the
// paper's per-tile clock domains (Section 1, advantage h: "it is possible
// to have individual clock domains per tile") in the simple rational-clock
// form: a tile at f/N talking to a network at f. Because the
// circuit-switched network separates data from control and the window
// counter tolerates arbitrary consumer timing, rate mismatches surface
// only as flow-control throttling, never as data corruption.
type Divided struct {
	inner   Clocked
	divisor int
	phase   int
}

// NewDivided wraps inner to run every divisor-th cycle.
func NewDivided(inner Clocked, divisor int) *Divided {
	if inner == nil {
		panic("sim: nil component")
	}
	if divisor < 1 {
		panic(fmt.Sprintf("sim: divisor %d < 1", divisor))
	}
	return &Divided{inner: inner, divisor: divisor}
}

// Divisor returns the clock ratio.
func (d *Divided) Divisor() int { return d.divisor }

// Eval implements Clocked.
func (d *Divided) Eval() {
	if d.phase == 0 {
		d.inner.Eval()
	}
}

// Commit implements Clocked.
func (d *Divided) Commit() {
	if d.phase == 0 {
		d.inner.Commit()
	}
	d.phase++
	if d.phase == d.divisor {
		d.phase = 0
	}
}
