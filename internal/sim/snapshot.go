package sim

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Snapshotter is the opt-in checkpoint interface of the warm-start layer:
// a component that can serialize its dynamic state (registers, counters,
// RNG streams — everything that evolves under Eval/Commit) and later
// restore it exactly. Static configuration fixed at construction time
// (design parameters, wiring, retention flags) is deliberately excluded:
// a snapshot is only ever restored into a world rebuilt from the same
// configuration, so serializing statics would add bytes without adding
// information.
//
// Snapshot appends the component's state to buf and returns the extended
// slice (append-style, so a world snapshot is one allocation-friendly
// pass). Restore consumes the component's state from the front of data
// and returns the remainder; it must consume exactly what Snapshot wrote
// and must leave the component in a state from which continued simulation
// is byte-identical to never having been snapshotted.
type Snapshotter interface {
	Snapshot(buf []byte) []byte
	Restore(data []byte) ([]byte, error)
}

// Binary helpers for Snapshotter implementations: fixed-width
// little-endian framing with explicit error returns, so a truncated or
// oversized blob fails closed instead of restoring garbage. Floats travel
// as IEEE 754 bit patterns — bit-exact, NaN-preserving.

// AppendU64 appends v little-endian.
func AppendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// ReadU64 consumes a u64 from the front of data.
func ReadU64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("sim: snapshot truncated (need 8 bytes, have %d)", len(data))
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

// AppendF64 appends v as its IEEE 754 bit pattern.
func AppendF64(buf []byte, v float64) []byte {
	return AppendU64(buf, math.Float64bits(v))
}

// ReadF64 consumes a float64 from the front of data.
func ReadF64(data []byte) (float64, []byte, error) {
	u, rest, err := ReadU64(data)
	return math.Float64frombits(u), rest, err
}

// AppendBool appends v as one byte.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// ReadBool consumes a bool from the front of data.
func ReadBool(data []byte) (bool, []byte, error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("sim: snapshot truncated (need 1 byte)")
	}
	switch data[0] {
	case 0:
		return false, data[1:], nil
	case 1:
		return true, data[1:], nil
	default:
		return false, nil, fmt.Errorf("sim: snapshot bool byte %#x", data[0])
	}
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(buf, v []byte) []byte {
	buf = AppendU64(buf, uint64(len(v)))
	return append(buf, v...)
}

// ReadBytes consumes a length-prefixed byte string; the returned slice
// aliases data.
func ReadBytes(data []byte) ([]byte, []byte, error) {
	n, rest, err := ReadU64(data)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("sim: snapshot truncated (need %d bytes, have %d)", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// snapMagic guards a world snapshot blob against being fed foreign bytes.
const snapMagic uint64 = 0x314E4F43534E5053 // "SNSCON1" spelled backwards in spirit: sim snapshot v1

// Snapshot serializes the world's dynamic state: the cycle counter, the
// pending timer wheel, and every component's Snapshotter blob in
// registration order. It fails — listing the offenders — when any
// registered component does not implement Snapshotter, so callers can
// fall back to a full re-simulation (which is byte-identical by the
// determinism contract, just slower). Under the active kernel all parked
// bookkeeping is settled first, so meters and skip accounting are
// current; kernel scheduling state itself (active lists, cached events,
// eval/skip diagnostics) is deliberately not serialized — Restore
// conservatively re-activates everything and the kernels re-converge,
// which changes no simulated byte because polling a quiescent component
// is a no-op by contract.
func (w *World) Snapshot() ([]byte, error) {
	if w.inEval {
		return nil, fmt.Errorf("sim: Snapshot called during Eval")
	}
	if w.parkedCount > 0 {
		w.flushParked()
	}
	var missing []string
	for i, c := range w.components {
		if _, ok := c.(Snapshotter); !ok {
			missing = append(missing, fmt.Sprintf("#%d %T", i, c))
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("sim: components without Snapshotter: %v", missing)
	}

	buf := AppendU64(nil, snapMagic)
	buf = AppendU64(buf, w.cycle)
	w.dropSpentTimers()
	timers := append([]uint64(nil), w.timers.heap...)
	sort.Slice(timers, func(i, j int) bool { return timers[i] < timers[j] })
	buf = AppendU64(buf, uint64(len(timers)))
	for _, t := range timers {
		buf = AppendU64(buf, t)
	}
	buf = AppendU64(buf, uint64(len(w.components)))
	var scratch []byte
	for _, c := range w.components {
		scratch = c.(Snapshotter).Snapshot(scratch[:0])
		buf = AppendBytes(buf, scratch)
	}
	return buf, nil
}

// Restore loads a Snapshot blob into a world that was rebuilt from the
// same configuration (same components, same registration order). The
// cycle counter, timers and every component's state are restored exactly;
// kernel bookkeeping is reset to the conservative all-active state and
// re-converges within the next cycles. Diagnostics counters (Evals,
// Skips, ComponentActivity, FastForwards) restart from zero — they are
// off-wire observability, not simulated state.
func (w *World) Restore(data []byte) error {
	if w.inEval {
		return fmt.Errorf("sim: Restore called during Eval")
	}
	magic, data, err := ReadU64(data)
	if err != nil {
		return err
	}
	if magic != snapMagic {
		return fmt.Errorf("sim: not a world snapshot (magic %#x)", magic)
	}
	cycle, data, err := ReadU64(data)
	if err != nil {
		return err
	}
	nTimers, data, err := ReadU64(data)
	if err != nil {
		return err
	}
	timers := make([]uint64, 0, nTimers)
	for i := uint64(0); i < nTimers; i++ {
		var t uint64
		t, data, err = ReadU64(data)
		if err != nil {
			return err
		}
		timers = append(timers, t)
	}
	nComp, data, err := ReadU64(data)
	if err != nil {
		return err
	}
	if int(nComp) != len(w.components) {
		return fmt.Errorf("sim: snapshot has %d components, world has %d", nComp, len(w.components))
	}
	for i, c := range w.components {
		snap, ok := c.(Snapshotter)
		if !ok {
			return fmt.Errorf("sim: component #%d %T has no Snapshotter", i, c)
		}
		var blob []byte
		blob, data, err = ReadBytes(data)
		if err != nil {
			return fmt.Errorf("sim: component #%d: %w", i, err)
		}
		rest, rerr := snap.Restore(blob)
		if rerr != nil {
			return fmt.Errorf("sim: component #%d %T: %w", i, c, rerr)
		}
		if len(rest) != 0 {
			return fmt.Errorf("sim: component #%d %T left %d unread snapshot bytes", i, c, len(rest))
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("sim: %d trailing snapshot bytes", len(data))
	}

	w.cycle = cycle
	w.timers.heap = w.timers.heap[:0]
	for _, t := range timers {
		w.timers.push(t)
	}
	// Conservative kernel reset: everything active, nothing parked, no
	// cached events. Quiescent components park or skip again on the next
	// poll; by the Quiescer contract that re-convergence is a no-op on
	// simulated state.
	for i := range w.skipped {
		w.skipped[i] = false
	}
	w.allSkipped = false
	for i := range w.parked {
		w.parked[i] = false
		w.parkedAt[i] = 0
	}
	w.parkedCount = 0
	w.sumParkedAt = 0
	if w.as != nil {
		a := w.as
		a.active = a.active[:0]
		for i := range w.components {
			a.active = append(a.active, i)
		}
		a.joinNew = a.joinNew[:0]
		a.joined = a.joined[:0]
		a.pending = a.pending[:0]
		a.events.heap = a.events.heap[:0]
		a.wakeMu.Lock()
		a.wakeQ = a.wakeQ[:0]
		a.wakeMu.Unlock()
	}
	return nil
}
