package sim

import (
	"fmt"

	"repro/internal/obs"
)

// timerWheel holds the pending WakeAt cycles of a world as a binary
// min-heap. The wheel only bounds fast-forward windows, so duplicate
// entries are harmless (they pop together) and spent entries are dropped
// lazily.
type timerWheel struct {
	heap []uint64
}

// push inserts a timer cycle.
func (t *timerWheel) push(c uint64) {
	t.heap = append(t.heap, c)
	i := len(t.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent] <= t.heap[i] {
			break
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

// peek returns the earliest pending timer.
func (t *timerWheel) peek() (uint64, bool) {
	if len(t.heap) == 0 {
		return 0, false
	}
	return t.heap[0], true
}

// pop removes the earliest pending timer.
func (t *timerWheel) pop() {
	n := len(t.heap) - 1
	t.heap[0] = t.heap[n]
	t.heap = t.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && t.heap[l] < t.heap[small] {
			small = l
		}
		if r < n && t.heap[r] < t.heap[small] {
			small = r
		}
		if small == i {
			return
		}
		t.heap[i], t.heap[small] = t.heap[small], t.heap[i]
		i = small
	}
}

// WakeAt schedules a timer at the given absolute cycle: the event kernel
// will not fast-forward past it, so a driver that stages work for that
// cycle (a scheduled configuration burst, a timeout) is guaranteed the
// cycle executes as a normal step. A timer at the current cycle is legal
// and spent immediately; a timer in the past is a programming error.
// Duplicate timers are allowed and coalesce. The gated and naive kernels
// execute every cycle anyway, so for them WakeAt is bookkeeping only —
// behaviour is byte-identical across kernels with or without timers.
func (w *World) WakeAt(cycle uint64) error {
	if cycle < w.cycle {
		return fmt.Errorf("sim: WakeAt(%d) is in the past (cycle %d)", cycle, w.cycle)
	}
	w.timers.push(cycle)
	if w.tracer != nil {
		w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
			Track: kernelTrack, Kind: obs.KindTimer, Value: int64(cycle)})
	}
	return nil
}

// PendingTimers returns the number of timers at or after the current
// cycle. Spent timers are discarded first, so the count is exact.
func (w *World) PendingTimers() int {
	w.dropSpentTimers()
	return len(w.timers.heap)
}

// dropSpentTimers removes timers before the current cycle; they can no
// longer bound a fast-forward window.
func (w *World) dropSpentTimers() {
	for {
		t, ok := w.timers.peek()
		if !ok || t >= w.cycle {
			return
		}
		w.timers.pop()
	}
}

// horizon returns the cycle up to which the world may fast-forward after
// a fully quiescent step: the earliest pending timer, the earliest
// self-scheduled component event (NextEvent of a Timed component), or the
// end of the Run window, whichever comes first. It never returns less
// than the current cycle.
func (w *World) horizon(end uint64) uint64 {
	h := end
	w.dropSpentTimers()
	if t, ok := w.timers.peek(); ok && t < h {
		h = t
	}
	for _, td := range w.timed {
		if td == nil {
			continue
		}
		if c, ok := td.NextEvent(); ok && c < h {
			h = c
		}
	}
	if h < w.cycle {
		h = w.cycle
	}
	return h
}

// fastForward advances the world by n fully quiescent cycles in one step:
// every component receives its idle bookkeeping — IdleWindow when
// implemented, n IdleTicks otherwise — and the skip counters advance as
// if the gated kernel had stepped each cycle individually. The caller
// (Run) has established that every component was quiescent and that no
// timer or self-scheduled event lies inside the window, so by the
// fixed-point argument in the package comment the replay is exact.
func (w *World) fastForward(n uint64) {
	if w.tracer != nil {
		w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
			Track: kernelTrack, Kind: obs.KindFastForward, Value: int64(n)})
	}
	for i := range w.components {
		if w.parked[i] {
			// A parked component's deferred window simply grows; its
			// bookkeeping is settled in one batch at unpark or flush.
			continue
		}
		w.skipsBy[i] += n
		if w.windowers[i] != nil {
			w.windowers[i].IdleWindow(n)
			continue
		}
		if w.idlers[i] != nil {
			for k := uint64(0); k < n; k++ {
				w.idlers[i].IdleTick()
			}
		}
	}
	w.skips += n * uint64(len(w.components)-w.parkedCount)
	w.cycle += n
	w.ffWindows++
	w.ffCycles += n
}
