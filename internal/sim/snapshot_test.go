package sim

import (
	"strings"
	"testing"
)

// snapCounter is a counter that opts into the warm-start layer: its
// register pair is its whole dynamic state.
type snapCounter struct {
	cur, next uint64
}

func (c *snapCounter) Eval()   { c.next = c.cur + 1 }
func (c *snapCounter) Commit() { c.cur = c.next }

func (c *snapCounter) Snapshot(buf []byte) []byte {
	buf = AppendU64(buf, c.cur)
	return AppendU64(buf, c.next)
}

func (c *snapCounter) Restore(data []byte) ([]byte, error) {
	var err error
	if c.cur, data, err = ReadU64(data); err != nil {
		return nil, err
	}
	if c.next, data, err = ReadU64(data); err != nil {
		return nil, err
	}
	return data, nil
}

// snapPulse is a self-scheduled periodic component: quiescent between
// pulses, so the event and active kernels fast-forward across it — the
// scheduling state a snapshot must survive.
type snapPulse struct {
	period uint64
	cycle  uint64
	fired  uint64
}

func (p *snapPulse) Eval() {}
func (p *snapPulse) Commit() {
	if p.cycle%p.period == 0 {
		p.fired++
	}
	p.cycle++
}
func (p *snapPulse) Quiescent() bool     { return p.cycle%p.period != 0 }
func (p *snapPulse) IdleTick()           { p.cycle++ }
func (p *snapPulse) IdleWindow(n uint64) { p.cycle += n }
func (p *snapPulse) NextEvent() (uint64, bool) {
	next := p.cycle + (p.period-p.cycle%p.period)%p.period
	return next, true
}

func (p *snapPulse) Snapshot(buf []byte) []byte {
	buf = AppendU64(buf, p.cycle)
	return AppendU64(buf, p.fired)
}

func (p *snapPulse) Restore(data []byte) ([]byte, error) {
	var err error
	if p.cycle, data, err = ReadU64(data); err != nil {
		return nil, err
	}
	if p.fired, data, err = ReadU64(data); err != nil {
		return nil, err
	}
	return data, nil
}

// snapWorld builds the test world: two counters and a sparse pulse.
func snapWorld(k Kernel) (*World, *snapCounter, *snapCounter, *snapPulse) {
	w := NewWorld(WithKernel(k))
	a, b := &snapCounter{}, &snapCounter{}
	p := &snapPulse{period: 7}
	w.Add(a, b, p)
	w.DependsOn(p)
	return w, a, b, p
}

// TestWorldSnapshotRoundTrip checks the warm-start contract on every
// kernel: run to N, snapshot, restore into a fresh world, continue to
// M — the final state must be byte-identical to a straight M-cycle run
// (compared via the worlds' own snapshots, which cover every simulated
// bit).
func TestWorldSnapshotRoundTrip(t *testing.T) {
	const n, m = 53, 200
	for _, k := range []Kernel{KernelNaive, KernelGated, KernelEvent, KernelActive} {
		w1, _, _, _ := snapWorld(k)
		w1.Run(n)
		blob, err := w1.Snapshot()
		if err != nil {
			t.Fatalf("kernel %v: snapshot: %v", k, err)
		}

		w2, a2, b2, p2 := snapWorld(k)
		if err := w2.Restore(blob); err != nil {
			t.Fatalf("kernel %v: restore: %v", k, err)
		}
		if got := w2.Cycle(); got != n {
			t.Fatalf("kernel %v: restored cycle %d, want %d", k, got, n)
		}
		w2.Run(m - n)

		w3, a3, b3, p3 := snapWorld(k)
		w3.Run(m)

		if *a2 != *a3 || *b2 != *b3 || *p2 != *p3 {
			t.Fatalf("kernel %v: resumed state %v/%v/%v, straight run %v/%v/%v",
				k, *a2, *b2, *p2, *a3, *b3, *p3)
		}
		s2, err := w2.Snapshot()
		if err != nil {
			t.Fatalf("kernel %v: resumed snapshot: %v", k, err)
		}
		s3, err := w3.Snapshot()
		if err != nil {
			t.Fatalf("kernel %v: straight snapshot: %v", k, err)
		}
		if string(s2) != string(s3) {
			t.Fatalf("kernel %v: resumed and straight snapshots differ", k)
		}
	}
}

// TestWorldSnapshotOptOut: a world holding any component without
// Snapshotter refuses to snapshot, naming the offender, so callers fall
// back to full simulation.
func TestWorldSnapshotOptOut(t *testing.T) {
	w := NewWorld()
	w.Add(&snapCounter{}, &counter{})
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("snapshot of a world with a non-Snapshotter component succeeded")
	} else if !strings.Contains(err.Error(), "counter") {
		t.Fatalf("error does not name the offending component: %v", err)
	}
}

// TestWorldRestoreRejects covers the structural failure modes: foreign
// bytes, truncation, and a component-count mismatch all fail closed.
func TestWorldRestoreRejects(t *testing.T) {
	w, _, _, _ := snapWorld(KernelEvent)
	w.Run(10)
	blob, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh, _, _, _ := snapWorld(KernelEvent)
	if err := fresh.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("restore of foreign bytes succeeded")
	}
	if err := fresh.Restore(blob[:len(blob)-3]); err == nil {
		t.Fatal("restore of truncated snapshot succeeded")
	}
	small := NewWorld()
	small.Add(&snapCounter{})
	if err := small.Restore(blob); err == nil {
		t.Fatal("restore into a world with fewer components succeeded")
	}
	// The intact blob still restores after the failed attempts.
	if err := fresh.Restore(blob); err != nil {
		t.Fatalf("restore of intact snapshot: %v", err)
	}
	if got := fresh.Cycle(); got != 10 {
		t.Fatalf("restored cycle %d, want 10", got)
	}
}
