package sim

import "testing"

// tickerComp counts cycles three ways — evaluated, idle-ticked one at a
// time, idle-ticked in windows — and can be quiescent on demand. The sum
// of the three must equal the elapsed cycles under every kernel.
type tickerComp struct {
	quiet   bool
	evals   uint64
	idles   uint64
	windows uint64 // cycles received through IdleWindow
}

func (c *tickerComp) Eval()               {}
func (c *tickerComp) Commit()             { c.evals++ }
func (c *tickerComp) Quiescent() bool     { return c.quiet }
func (c *tickerComp) IdleTick()           { c.idles++ }
func (c *tickerComp) IdleWindow(n uint64) { c.windows += n }

func (c *tickerComp) total() uint64 { return c.evals + c.idles + c.windows }

// timedComp is quiescent until a scheduled cycle, then runs once — the
// shape of a scheduled burst source.
type timedComp struct {
	tickerComp
	world *World
	due   uint64
	fired uint64
}

func (c *timedComp) Quiescent() bool { return c.world.Cycle() != c.due }
func (c *timedComp) Eval()           { c.fired++ }
func (c *timedComp) NextEvent() (uint64, bool) {
	if c.world.Cycle() >= c.due {
		return 0, false
	}
	return c.due, true
}

// TestWakeAtValidation covers the timer-registration edge cases: the
// current cycle is legal, the past is an error, duplicates coalesce.
func TestWakeAtValidation(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	w.Add(&tickerComp{quiet: true})
	w.Run(10)
	if err := w.WakeAt(w.Cycle()); err != nil {
		t.Fatalf("WakeAt(current cycle) rejected: %v", err)
	}
	if err := w.WakeAt(w.Cycle() - 1); err == nil {
		t.Fatal("WakeAt in the past accepted")
	}
	// Duplicate timers are legal and counted until spent.
	for i := 0; i < 3; i++ {
		if err := w.WakeAt(w.Cycle() + 5); err != nil {
			t.Fatal(err)
		}
	}
	if n := w.PendingTimers(); n != 4 {
		t.Fatalf("PendingTimers = %d, want 4", n)
	}
	w.Run(20)
	if n := w.PendingTimers(); n != 0 {
		t.Fatalf("timers not spent after passing: %d pending", n)
	}
}

// TestFastForwardBookkeeping: a fully quiescent world fast-forwards a Run
// window in one step, the idle bookkeeping covers every skipped cycle,
// and the per-component counters agree with the aggregate ones.
func TestFastForwardBookkeeping(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	c := &tickerComp{quiet: true}
	w.Add(c)
	w.Run(1000)
	if w.Cycle() != 1000 {
		t.Fatalf("cycle = %d, want 1000", w.Cycle())
	}
	if c.total() != 1000 {
		t.Fatalf("bookkeeping covers %d of 1000 cycles (evals=%d idles=%d windows=%d)",
			c.total(), c.evals, c.idles, c.windows)
	}
	if c.windows == 0 {
		t.Fatal("no cycles arrived through IdleWindow; fast-forward never engaged")
	}
	if _, ffCycles := w.FastForwards(); ffCycles != c.windows {
		t.Fatalf("FastForwards cycles %d != component windows %d", ffCycles, c.windows)
	}
	evals, skips := w.ComponentActivity(0)
	if evals != w.Evals() || skips != w.Skips() {
		t.Fatalf("per-component activity (%d,%d) disagrees with world (%d,%d)",
			evals, skips, w.Evals(), w.Skips())
	}
	if evals+skips != 1000 {
		t.Fatalf("activity covers %d of 1000 cycles", evals+skips)
	}
}

// TestTimerBoundsFastForward: a timer inside an otherwise dead window
// forces that cycle to execute as a normal step, so a mutation staged for
// it is observed exactly on time.
func TestTimerBoundsFastForward(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	c := &tickerComp{quiet: true}
	w.Add(c)
	if err := w.WakeAt(500); err != nil {
		t.Fatal(err)
	}
	w.Run(1000)
	// The timer splits the window: no fast-forward may cross cycle 500,
	// so the world stepped it normally (a skip, not a window cycle).
	windows, _ := w.FastForwards()
	if windows < 2 {
		t.Fatalf("timer did not split the window: %d fast-forwards", windows)
	}
	if c.total() != 1000 {
		t.Fatalf("bookkeeping covers %d of 1000 cycles", c.total())
	}
}

// TestTimerAtRunBoundary: a timer on the last cycle of a Run window fires
// (is spent) even though the window ends there, and one exactly past the
// end stays pending — the boundary is exclusive.
func TestTimerAtRunBoundary(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	w.Add(&tickerComp{quiet: true})
	if err := w.WakeAt(99); err != nil { // last cycle executed by Run(100)
		t.Fatal(err)
	}
	if err := w.WakeAt(100); err != nil { // first cycle of the next window
		t.Fatal(err)
	}
	w.Run(100)
	if w.Cycle() != 100 {
		t.Fatalf("cycle = %d, want 100", w.Cycle())
	}
	if n := w.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers = %d, want 1 (the boundary timer)", n)
	}
	w.Run(1)
	if n := w.PendingTimers(); n != 0 {
		t.Fatalf("boundary timer still pending after its cycle ran")
	}
}

// TestNextEventBoundsFastForward: a Timed component's self-scheduled
// event is executed on exactly its cycle, with the dead time around it
// fast-forwarded.
func TestNextEventBoundsFastForward(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	c := &timedComp{world: w, due: 700}
	w.Add(c)
	w.Run(2000)
	if c.fired != 1 {
		t.Fatalf("timed component fired %d times, want 1", c.fired)
	}
	if _, ffCycles := w.FastForwards(); ffCycles == 0 {
		t.Fatal("no fast-forward around the scheduled event")
	}
	if c.total() != 2000 {
		t.Fatalf("bookkeeping covers %d of 2000 cycles", c.total())
	}
}

// TestMonitorBlocksFastForward: one every-cycle component (a sim.Func
// monitor) in the world disables fast-forward entirely — the monitor
// observes every cycle under the event kernel, the same contract as under
// the others — while the quiescent component next to it is still skipped
// cycle by cycle.
func TestMonitorBlocksFastForward(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	c := &tickerComp{quiet: true}
	observed := uint64(0)
	w.Add(c, &Func{OnEval: func() { observed++ }})
	w.Run(500)
	if observed != 500 {
		t.Fatalf("monitor observed %d of 500 cycles", observed)
	}
	if windows, _ := w.FastForwards(); windows != 0 {
		t.Fatalf("fast-forward engaged across a monitor: %d windows", windows)
	}
	if c.windows != 0 || c.idles != 500 {
		t.Fatalf("quiescent component bookkeeping wrong: idles=%d windows=%d",
			c.idles, c.windows)
	}
}

// TestEventKernelIdleTickFallback: a component without IdleWindow still
// gets its per-cycle IdleTick across a fast-forwarded window.
type noWindowComp struct {
	quiet bool
	idles uint64
	evals uint64
}

func (c *noWindowComp) Eval()           {}
func (c *noWindowComp) Commit()         { c.evals++ }
func (c *noWindowComp) Quiescent() bool { return c.quiet }
func (c *noWindowComp) IdleTick()       { c.idles++ }

func TestEventKernelIdleTickFallback(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	c := &noWindowComp{quiet: true}
	w.Add(c)
	w.Run(300)
	if c.idles+c.evals != 300 {
		t.Fatalf("fallback bookkeeping covers %d of 300 cycles", c.idles+c.evals)
	}
	if _, ffCycles := w.FastForwards(); ffCycles == 0 {
		t.Fatal("fast-forward never engaged")
	}
}

// TestEventKernelRunUntilPerCycle: RunUntil never fast-forwards — the
// predicate is a monitor and may read the cycle counter.
func TestEventKernelRunUntilPerCycle(t *testing.T) {
	w := NewWorld(WithKernel(KernelEvent))
	w.Add(&tickerComp{quiet: true})
	checks := 0
	ok := w.RunUntil(func() bool { checks++; return w.Cycle() >= 50 }, 200)
	if !ok {
		t.Fatal("predicate not satisfied")
	}
	if checks != 50 {
		t.Fatalf("predicate evaluated %d times, want 50 (every cycle)", checks)
	}
	if windows, _ := w.FastForwards(); windows != 0 {
		t.Fatalf("RunUntil fast-forwarded: %d windows", windows)
	}
}
