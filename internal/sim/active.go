package sim

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// This file implements KernelActive: the O(active) kernel with optional
// sharded parallel Eval.
//
// # Active and parked lists
//
// The event kernel removed the O(components·cycles) term for windows in
// which the *whole* world is idle, but on any cycle it cannot
// fast-forward it still polls Quiescent on every component. KernelActive
// removes that term per component: the world is split into an active
// list (polled and evaluated every cycle, exactly like the gated kernel)
// and a parked list (not visited at all). A component may be parked only
// when it is provably inert until an external stimulus:
//
//   - it was quiescent this cycle, and
//   - it is parkable: its complete set of upstream signal drivers was
//     declared with DependsOn, so the kernel knows every way its
//     quiescence can end — an upstream component committing (its
//     registered outputs change), one of its own staging mutators being
//     invoked (which calls the wake function every Waker already
//     receives), a pending WakeAt timer firing, or its own self-scheduled
//     NextEvent cycle arriving (sim.Timed).
//
// There is a second, declaration-free route into the parked list: a
// component implementing Sleeper parks on any cycle Asleep() is true.
// Asleep certifies input-deafness — no register the component reads can
// end its quiescence, only its own staging mutators can — so the kernel
// needs no upstream set at all and sends it no commit notifications;
// the wake closure is its sole re-activation channel. This is how mesh
// assemblies park: a dormant assembly (unconfigured crossbar, disabled
// converters) latches asleep and leaves the sweep, while a configured
// one is never parked and watches its neighbour wires every cycle,
// exactly like the gated kernel. Declaring neighbour links with
// DependsOn instead would be sound but slow: every commit of a
// streaming assembly would wake its parked neighbours into a
// poll/re-park churn.
//
// Components with neither a DependsOn declaration nor a Sleeper
// implementation are never parked and behave exactly as under the gated
// kernel, so the kernel is conservative by construction: declaring
// nothing costs only speed, never correctness.
//
// Parked components are re-activated through exactly the channels above:
//
//   - wake calls (staged mutators Push/Inject/PushConfig/Pop) unpark at
//     once when they arrive during the Eval phase, and are queued for the
//     next cycle when they arrive between cycles;
//   - a committing component unparks its declared downstream components
//     for the next cycle — the earliest cycle on which the commit's
//     register changes are visible to their Quiescent polls;
//   - a WakeAt timer coming due unparks every parked component (timers
//     are world-global and rare; one conservative full poll per timer
//     keeps them exact);
//   - a parked Timed component's NextEvent, cached at park time, unparks
//     it when the clock reaches it. While parked the component's state
//     is frozen, so the cached value stays valid — the "stable NextEvent"
//     half of the parking contract, checked structurally by the
//     kernelcontract analyzer (a Timed component must be an IdleWindower
//     so its parked window replays in one batch).
//
// A parked component receives no per-cycle bookkeeping at all; the idle
// cycles it owes are replayed in one IdleWindow batch when it unparks
// (or when the world flushes at a Run/Step boundary), exactly as
// fast-forward replays them today. By the same fixed-point argument —
// a parked component's registers cannot change, and nothing it reads
// changes while every declared upstream is parked or quiescent — the
// replay is exact and results stay byte-identical to the naive, gated
// and event kernels.
//
// # Two-phase sweep with a wake queue
//
// Unlike the gated kernel's interleaved poll-then-eval sweep, the active
// kernel polls the whole active list first (pass 1) and then evaluates
// the non-quiescent components (pass 2). The split is what makes pass 2
// data-parallel: during pass 1 no Eval runs, so no staging mutator can
// fire, and every Quiescent poll observes the same committed pre-edge
// state; during pass 2 every staged mutation lands in staging fields
// that no Eval reads (the two-phase contract the wake mechanism already
// relies on). A mutator invoked during pass 2 therefore cannot change
// any Eval's outcome — it only changes the target's *next* quiescence —
// so its wake is appended to a queue instead of running the missed Eval
// inline. After pass 2 the queue is drained: sorted by registration
// index, deduplicated, and each still-skipped (or parked) target runs
// its missed Eval sequentially, chaining further wakes inline. The drain
// order is deterministic, so results are byte-identical no matter how
// the scheduler interleaved pass 2.
//
// # Sharded parallel Eval
//
// With the sweep split as above, both passes shard over a bounded set of
// goroutines (WithParallelism, default GOMAXPROCS): pass 1 writes only
// the per-component skip flags and shard-local poll counters, pass 2
// runs disjoint Evals whose only cross-component writes are staging
// fields no concurrent reader touches. The goroutines claim work by
// stealing fixed-size chunks off a shared atomic cursor rather than by a
// static split, so a cluster of expensive active components (one hot
// region of a mostly parked mesh) spreads across all workers instead of
// serializing on whichever shard the static split dealt it to. Chunk
// assignment is scheduler dependent, but every chunk runs exactly once
// and all cross-chunk writes are disjoint, so nothing observable depends
// on the interleaving. Everything order-sensitive —
// the wake-queue drain, the Commit sweep, the evals/skips counter folds,
// the park decisions — runs sequentially in registration order, the
// same in-order fold that makes the sweep pool deterministic. Output is
// byte-identical for any shard count, including 1; worlds below
// parallelMinActive active components skip the goroutine hand-off
// entirely and run both passes on the caller.

// parallelMinActive is the active-list size below which the sharded
// sweep is not worth the goroutine hand-off and both passes run on the
// calling goroutine. The cutover does not affect results: the sharded
// and sequential sweeps execute the same two passes over the same list.
const parallelMinActive = 256

// WithParallelism bounds the goroutine pool the active kernel shards
// its Eval sweep over: n == 1 keeps the sweep on the calling
// goroutine, n <= 0 (the default) means GOMAXPROCS, larger values
// allow up to n shards (capped by the active-list size). Results are
// byte-identical for every value. The option only affects
// KernelActive; the other kernels are single-threaded by design.
func WithParallelism(n int) WorldOption {
	return func(w *World) { w.parallelism = n }
}

// DependsOn declares component c's complete upstream set: the
// components whose Commit can change a signal c reads. Under
// KernelActive the declaration makes c parkable — on any cycle c is
// quiescent it leaves the per-cycle sweep entirely, and it is woken by
// its staging mutators, by a pending timer, by its own NextEvent, or by
// any declared upstream committing. The declaration is a contract: an
// undeclared upstream whose commit can end c's quiescence would desync
// c, exactly like a Quiescent that ignores staged work. Components
// never passed to DependsOn are never parked. All components involved
// must already be registered with Add.
func (w *World) DependsOn(c Clocked, upstreams ...Clocked) {
	ci := w.mustIndexOf(c)
	w.parkable[ci] = true
	for _, u := range upstreams {
		ui := w.mustIndexOf(u)
		w.downstream[ui] = append(w.downstream[ui], ci)
	}
}

// mustIndexOf resolves a registered component's index.
func (w *World) mustIndexOf(c Clocked) int {
	if i, ok := w.index[c]; ok {
		return i
	}
	panic("sim: DependsOn on a component not registered with Add")
}

// Parked returns the number of currently parked components. Outside
// KernelActive it is always zero.
func (w *World) Parked() int { return w.parkedCount }

// Activations returns how many times a parked component was returned to
// the active list — the unpark count, the activity churn the parking
// heuristics are judged by.
func (w *World) Activations() uint64 { return w.activations }

// Polls returns the number of Quiescent() polls executed so far, across
// all kernels — the per-cycle overhead term the active kernel exists to
// shrink.
func (w *World) Polls() uint64 { return w.polls }

// eventEntry is one cached NextEvent of a parked Timed component.
type eventEntry struct {
	cycle uint64
	idx   int
}

// eventHeap is a binary min-heap of cached NextEvent cycles, ordered by
// cycle then registration index so ties unpark in registration order.
type eventHeap struct {
	heap []eventEntry
}

func (h *eventHeap) less(a, b eventEntry) bool {
	return a.cycle < b.cycle || (a.cycle == b.cycle && a.idx < b.idx)
}

func (h *eventHeap) push(e eventEntry) {
	h.heap = append(h.heap, e)
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.heap[parent], h.heap[i] = h.heap[i], h.heap[parent]
		i = parent
	}
}

func (h *eventHeap) peek() (eventEntry, bool) {
	if len(h.heap) == 0 {
		return eventEntry{}, false
	}
	return h.heap[0], true
}

func (h *eventHeap) pop() {
	n := len(h.heap) - 1
	h.heap[0] = h.heap[n]
	h.heap = h.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.heap[l], h.heap[small]) {
			small = l
		}
		if r < n && h.less(h.heap[r], h.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.heap[i], h.heap[small] = h.heap[small], h.heap[i]
		i = small
	}
}

// activeState is the KernelActive bookkeeping attached to a World. It is
// nil under every other kernel, so they carry no overhead.
type activeState struct {
	active   []int // sorted registration indices of unparked components
	scratch  []int // commit-phase compaction buffer
	joinNew  []int // components Added since the last cycle began
	joined   []int // unparked mid-cycle (wake drain), merged before Commit
	pending  []int // unpark requests for the next cycle
	events   eventHeap
	sharding shardState

	wakeMu sync.Mutex
	wakeQ  []int // wakes collected during the parallel Eval pass
}

// shardState is the scratch the sharded passes fold from.
type shardState struct {
	polls  []uint64     // per-shard Quiescent poll counts
	cursor atomic.Int64 // work-stealing chunk cursor, reset per pass
}

// stealChunk is the work-stealing grain of the sharded passes: each
// goroutine claims this many consecutive active-list slots per cursor
// bump. Small enough that a cluster of expensive components spreads
// across workers, large enough that the atomic add amortizes to noise.
const stealChunk = 64

// stealRange claims the next chunk of the active list; ok is false when
// the list is exhausted. Which goroutine claims which chunk is scheduler
// dependent, but every chunk is claimed exactly once, so any per-chunk
// work whose writes are disjoint (skip flags, Evals) and any total folded
// from all chunks (poll counts) is deterministic.
func (s *shardState) stealRange(n int) (lo, hi int, ok bool) {
	lo = int(s.cursor.Add(stealChunk)) - stealChunk
	if lo >= n {
		return 0, 0, false
	}
	hi = lo + stealChunk
	if hi > n {
		hi = n
	}
	return lo, hi, true
}

// parkedPendingSkips returns the skipped cycles currently deferred on
// parked components — the correction the counter accessors apply so
// Skips and ComponentActivity read exactly as under the gated kernel
// even mid-run.
func (w *World) parkedPendingSkips() uint64 {
	if w.parkedCount == 0 {
		return 0
	}
	return uint64(w.parkedCount)*w.cycle - w.sumParkedAt
}

// park removes component i from the active sweep, starting with the next
// cycle. Called from the Commit phase after i was skipped; the current
// cycle's bookkeeping has already been done the normal way.
func (w *World) park(i int) {
	w.parked[i] = true
	w.parkedAt[i] = w.cycle + 1
	w.parkedCount++
	w.sumParkedAt += w.parkedAt[i]
	if w.tracer != nil {
		w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
			Track: w.track(i), Kind: obs.KindPark})
	}
	if td := w.timed[i]; td != nil {
		// Cache the component's self-scheduled horizon; its state is
		// frozen while parked, so the value cannot drift (the parking
		// contract). A stale entry left by an earlier wake-unpark is
		// harmless: it triggers one spurious poll.
		if c, ok := td.NextEvent(); ok {
			w.as.events.push(eventEntry{cycle: c, idx: i})
		}
	}
}

// settleParked replays the idle cycles component i owes up to the
// current cycle: the deferred skip counters and one IdleWindow batch
// (or per-cycle IdleTicks). The component stays parked; unparking is
// the caller's business.
func (w *World) settleParked(i int) {
	owed := w.cycle - w.parkedAt[i]
	if owed == 0 {
		return
	}
	w.skips += owed
	w.skipsBy[i] += owed
	w.sumParkedAt += owed
	w.parkedAt[i] = w.cycle
	if w.windowers[i] != nil {
		w.windowers[i].IdleWindow(owed)
		return
	}
	if w.idlers[i] != nil {
		for k := uint64(0); k < owed; k++ {
			w.idlers[i].IdleTick()
		}
	}
}

// unpark settles component i's deferred bookkeeping and removes it from
// the parked set. The caller must re-insert i into the active list (or
// the joined buffer when mid-cycle).
func (w *World) unpark(i int) {
	if w.tracer != nil {
		w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
			Track: w.track(i), Kind: obs.KindUnpark, Value: int64(w.cycle - w.parkedAt[i])})
	}
	w.settleParked(i)
	w.parked[i] = false
	w.parkedCount--
	w.sumParkedAt -= w.parkedAt[i]
	w.activations++
}

// flushParked settles every parked component's deferred bookkeeping
// without unparking it, so all externally visible state — power meters,
// cycle counters, activity statistics — reads exactly as under the
// gated kernel. Called at every public Step, at Run return and before
// every RunUntil predicate evaluation.
func (w *World) flushParked() {
	if w.parkedCount == 0 {
		return
	}
	for i := range w.components {
		if w.parked[i] {
			w.settleParked(i)
		}
	}
}

// mergeActive inserts the sorted-unique index set add into the sorted
// active list in place.
func (w *World) mergeActive(add []int) {
	if len(add) == 0 {
		return
	}
	a := w.as
	dst := a.scratch[:0]
	act := a.active
	i, j := 0, 0
	for i < len(act) || j < len(add) {
		switch {
		case j == len(add) || (i < len(act) && act[i] < add[j]):
			dst = append(dst, act[i])
			i++
		case i == len(act) || add[j] < act[i]:
			dst = append(dst, add[j])
			j++
		default: // equal; keep one
			dst = append(dst, act[i])
			i, j = i+1, j+1
		}
	}
	a.scratch = act[:0]
	a.active = dst
}

// sortedUnique sorts s ascending and removes duplicates in place.
func sortedUnique(s []int) []int {
	if len(s) < 2 {
		return s
	}
	sort.Ints(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// beginCycleActive processes everything that re-activates components at
// the top of a cycle: components Added since the last cycle, queued
// unpark requests (downstream commits, between-cycle wakes), cached
// NextEvent cycles that have come due, and — conservatively — a pending
// WakeAt timer, which unparks everything for one full poll.
func (w *World) beginCycleActive() {
	a := w.as
	var due []int
	if len(a.joinNew) > 0 {
		due = append(due, a.joinNew...)
		a.joinNew = a.joinNew[:0]
	}
	if len(a.pending) > 0 {
		for _, i := range a.pending {
			if w.parked[i] {
				w.unpark(i)
				due = append(due, i)
			}
		}
		a.pending = a.pending[:0]
	}
	for {
		e, ok := a.events.peek()
		if !ok || e.cycle > w.cycle {
			break
		}
		a.events.pop()
		if w.parked[e.idx] {
			w.unpark(e.idx)
			due = append(due, e.idx)
		}
	}
	w.dropSpentTimers()
	if t, ok := w.timers.peek(); ok && t <= w.cycle && w.parkedCount > 0 {
		// A timer fires this cycle: some driver staged work for it, and
		// that work may concern any component. Poll everything once.
		for i := range w.components {
			if w.parked[i] {
				w.unpark(i)
				due = append(due, i)
			}
		}
	}
	w.mergeActive(sortedUnique(due))
}

// shardCount resolves how many goroutines the parallel passes use for
// the current active-list size.
func (w *World) shardCount() int {
	n := len(w.as.active)
	if n < parallelMinActive {
		return 1
	}
	p := w.parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// pollActive is pass 1: the quiescence poll over the active list. It
// only writes per-component skip flags and shard-local poll counters,
// so the shards race on nothing.
func (w *World) pollActive(shards int) {
	a := w.as
	act := a.active
	poll := func(lo, hi int) uint64 {
		var polls uint64
		for _, i := range act[lo:hi] {
			if w.quiescers[i] != nil {
				polls++
				w.skipped[i] = w.quiescers[i].Quiescent()
			} else {
				w.skipped[i] = false
			}
		}
		return polls
	}
	if shards == 1 {
		w.polls += poll(0, len(act))
		return
	}
	if cap(a.sharding.polls) < shards {
		a.sharding.polls = make([]uint64, shards)
	}
	counts := a.sharding.polls[:shards]
	a.sharding.cursor.Store(0)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var polls uint64
			for {
				lo, hi, ok := a.sharding.stealRange(len(act))
				if !ok {
					break
				}
				polls += poll(lo, hi)
			}
			counts[s] = polls
		}(s)
	}
	wg.Wait()
	for _, c := range counts {
		w.polls += c
	}
}

// evalActive is pass 2: Eval every non-quiescent active component.
// Sequentially it tracks evalPos so wake calls into already-passed slots
// run inline while later slots are left for the sweep itself, mirroring
// the gated kernel exactly; in parallel every wake is queued
// (parallelEval mode) and drained afterwards. See the package comment
// for why the queue is sufficient.
func (w *World) evalActive(shards int) {
	act := w.as.active
	if shards == 1 {
		for _, i := range act {
			w.evalPos = i
			if !w.skipped[i] {
				w.components[i].Eval()
			}
		}
		return
	}
	a := w.as
	a.sharding.cursor.Store(0)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := a.sharding.stealRange(len(act))
				if !ok {
					return
				}
				for _, i := range act[lo:hi] {
					if !w.skipped[i] {
						w.components[i].Eval()
					}
				}
			}
		}()
	}
	wg.Wait()
}

// drainWakes runs the missed Evals of every component woken during pass
// 2, in registration order. Chained wakes (a drained Eval staging work
// into yet another skipped component) execute inline through the normal
// sequential wake path.
func (w *World) drainWakes() {
	a := w.as
	if len(a.wakeQ) == 0 {
		return
	}
	q := sortedUnique(a.wakeQ)
	for _, i := range q {
		w.wakeActiveKernel(i)
	}
	a.wakeQ = a.wakeQ[:0]
}

// wakeActiveKernel is the sequential wake path of the active kernel,
// used by wakes during the sequential pass-2 sweep, during the drain,
// and by chained wakes. A parked target unparks and runs its missed
// Eval (it is outside the active list, so nothing re-evals it); an
// active-but-skipped target runs the missed Eval inline only if its
// sweep slot already passed — a later slot just clears the skip flag
// and lets the sweep eval it in order, exactly like a gated-kernel poll
// observing staged work. Either way the target commits normally.
func (w *World) wakeActiveKernel(i int) {
	if w.parked[i] {
		w.unpark(i)
		w.skipped[i] = false
		if w.tracer != nil {
			w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
				Track: w.track(i), Kind: obs.KindWake})
		}
		w.components[i].Eval()
		w.as.joined = append(w.as.joined, i)
		return
	}
	if !w.skipped[i] {
		return
	}
	w.skipped[i] = false
	if w.tracer != nil {
		w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
			Track: w.track(i), Kind: obs.KindWake})
	}
	if i <= w.evalPos {
		w.components[i].Eval()
	}
}

// horizonActive is the active kernel's fast-forward bound. Unlike the
// event kernel's horizon it never scans the whole world: parked Timed
// components already cached their NextEvent in the unpark heap, so only
// the (quiescent) active components need a live poll — O(active), and
// O(1) once everything is parked.
func (w *World) horizonActive(end uint64) uint64 {
	h := end
	w.dropSpentTimers()
	if t, ok := w.timers.peek(); ok && t < h {
		h = t
	}
	if e, ok := w.as.events.peek(); ok && e.cycle < h {
		h = e.cycle
	}
	for _, i := range w.as.active {
		if td := w.timed[i]; td != nil {
			if c, ok := td.NextEvent(); ok && c < h {
				h = c
			}
		}
	}
	if h < w.cycle {
		h = w.cycle
	}
	return h
}

// runActive is Run's loop for KernelActive: per-cycle stepping over the
// active list, fast-forwarding fully quiescent windows like the event
// kernel (parked components are left untouched by fast-forward — their
// deferred window simply grows), and a final flush so every parked
// component's bookkeeping is settled when Run returns.
func (w *World) runActive(n int) {
	end := w.cycle + uint64(n)
	for w.cycle < end {
		w.stepActive()
		if w.allSkipped && w.cycle < end {
			if ff := w.horizonActive(end) - w.cycle; ff > 0 {
				w.fastForward(ff)
			}
		}
	}
	w.flushParked()
}

// stepActive advances a KernelActive world by one cycle.
func (w *World) stepActive() {
	w.beginCycleActive()
	a := w.as
	n0 := len(w.components) // components Added mid-cycle join next cycle

	shards := w.shardCount()
	w.inEval = true
	w.evalPos = -1 // no slot passed yet; Quiescent may not invoke mutators
	w.pollActive(shards)
	if shards > 1 {
		w.parallelEval = true
		w.evalActive(shards)
		w.parallelEval = false
	} else {
		w.evalActive(1)
	}
	w.evalPos = n0 - 1 // every slot has passed: drained wakes eval inline
	w.drainWakes()
	w.inEval = false

	w.mergeActive(sortedUnique(a.joined))
	a.joined = a.joined[:0]

	// Commit phase: sequential, in registration order, exactly like the
	// gated kernel — counters, idle bookkeeping, park decisions and
	// downstream unparks all fold deterministically here.
	all := len(w.components) > 0
	keep := a.scratch[:0]
	for _, i := range a.active {
		if w.skipped[i] {
			w.skips++
			w.skipsBy[i]++
			if w.idlers[i] != nil {
				w.idlers[i].IdleTick()
			}
			if w.parkable[i] || (w.sleepers[i] != nil && w.sleepers[i].Asleep()) {
				w.park(i)
				continue
			}
			keep = append(keep, i)
			continue
		}
		all = false
		w.evals++
		w.evalsBy[i]++
		if w.tracer != nil {
			w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
				Track: w.track(i), Kind: obs.KindEval})
		}
		w.components[i].Commit()
		keep = append(keep, i)
		// Unconditionally: a dependent later in this same sweep may not
		// have parked yet — the next cycle's intake ignores entries that
		// are not parked by then.
		a.pending = append(a.pending, w.downstream[i]...)
	}
	a.scratch = a.active[:0]
	a.active = keep
	if len(w.components) != n0 {
		all = false // a mid-cycle Add must be polled before fast-forward
	}
	w.allSkipped = all
	w.cycle++
}
