package sim

import "testing"

func TestDividedRate(t *testing.T) {
	c := &counter{}
	w := NewWorld()
	w.Add(NewDivided(c, 3))
	w.Run(30)
	if c.cur != 10 {
		t.Fatalf("divided-by-3 counter = %d after 30 cycles, want 10", c.cur)
	}
	if d := NewDivided(c, 3); d.Divisor() != 3 {
		t.Fatal("Divisor accessor wrong")
	}
}

func TestDividedByOneIsTransparent(t *testing.T) {
	a, b := &counter{}, &counter{}
	w := NewWorld()
	w.Add(a, NewDivided(b, 1))
	w.Run(17)
	if a.cur != b.cur {
		t.Fatalf("divide-by-1 diverged: %d vs %d", a.cur, b.cur)
	}
}

func TestDividedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil":      func() { NewDivided(nil, 2) },
		"zero":     func() { NewDivided(&counter{}, 0) },
		"negative": func() { NewDivided(&counter{}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDividedPhaseAlignment(t *testing.T) {
	// The wrapped component fires on cycles 0, N, 2N, ... (first world
	// cycle included), keeping domains deterministically aligned.
	fires := []uint64{}
	w := NewWorld()
	probe := &Func{}
	d := NewDivided(&Func{OnCommit: func() { fires = append(fires, w.Cycle()) }}, 4)
	w.Add(probe, d)
	w.Run(12)
	want := []uint64{0, 4, 8}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}
