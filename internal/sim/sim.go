// Package sim provides the synchronous, two-phase simulation kernel used by
// all cycle-accurate NoC models.
//
// Hardware registers sample their inputs on the clock edge; a software model
// must therefore separate "compute next state from current outputs" from
// "commit next state". Every clocked component implements Clocked: during a
// cycle the kernel first calls Eval on every component (all of them observe
// the same pre-edge signal values) and then Commit on every component (all
// outputs advance together). Because the paper's routers register their
// outputs (Section 5.1: "The 20 output lanes of the crossbar are
// registered"), there are no combinational paths between components, and
// components may be evaluated in any order.
//
// # Activity tracking
//
// The paper's circuit-switched router wins on energy because idle lanes and
// gated clocks do no work; the kernel exploits the same sparsity in
// software. A component may additionally implement Quiescer; each cycle the
// gated kernel (the default, KernelGated) polls Quiescent at the
// component's Eval slot and, when true, skips both Eval and Commit for that
// cycle, running the component's IdleTick (if implemented) in the Commit
// phase instead. The contract making this exact, not approximate:
//
//   - Quiescent must return true only when running Eval+Commit now would
//     leave every externally visible value unchanged, except for uniform
//     per-cycle bookkeeping (cycle counters, slot counters, constant clock
//     energy) that IdleTick reproduces exactly.
//   - Quiescent must account for all staged work (pushed words, injected
//     flits, pending configuration writes), so work staged before the poll
//     is never missed.
//   - A mutator that stages work during the Eval phase after the
//     component's slot has already been polled must wake the component: the
//     kernel hands Wakers a wake function at registration, and the wake
//     runs the missed Eval immediately (safe because staged work is
//     processed in Commit and never read by Eval). Such mutators must only
//     be called during the Eval phase, the same rule the two-phase
//     semantics already impose on Push/Inject/Pop.
//
// Under these rules the gated kernel is byte-identical to the naive kernel
// on every scenario — verified by the gated-vs-naive comparison tests and
// the CI byte-compare — while skipping the >90% of Eval/Commit pairs a
// sparse mesh would otherwise waste on idle routers.
//
// # Event-driven scheduling
//
// The gated kernel still visits every component every cycle, if only to
// poll Quiescent. The event kernel (KernelEvent) removes the remaining
// O(components·cycles) term for windows in which the whole world is idle:
// when a Run cycle skips every component, the kernel fast-forwards the
// global clock to the next event horizon — the earliest pending timer
// (WakeAt), the earliest self-scheduled component event (NextEvent), or
// the end of the Run window — and replays the skipped window's idle
// bookkeeping in O(components), using IdleWindow where implemented and
// falling back to per-cycle IdleTick otherwise.
//
// Fast-forward is exact, not approximate, by a fixed-point argument: a
// cycle in which every component is quiescent commits no register, so the
// pre-edge signal state the next cycle's Quiescent polls would observe is
// unchanged — every later cycle up to the horizon would skip identically
// under the gated kernel. The two holes in that argument are closed by
// contract:
//
//   - Bookkeeping replayed by IdleTick must never influence Quiescent. A
//     component whose quiescence can end purely through the passage of
//     cycles (a timer expiring, a scheduled burst coming due) must
//     implement Timed and report that cycle via NextEvent; the kernel
//     never fast-forwards past it.
//   - Stimulus and monitors that must observe every cycle stay sim.Func
//     (or any non-Quiescer): one such component in the world disables
//     fast-forward entirely, because no cycle then skips all components.
//     Monitors therefore keep their every-cycle contract under every
//     kernel without declaring anything.
//
// External drivers that mutate the world between Run calls need no
// declaration either — fast-forward never crosses a Run boundary. Timers
// (WakeAt) exist for drivers that stage future work inside a Run window,
// e.g. the BE network's scheduled configuration bursts.
//
// # O(active) scheduling and parallel Eval
//
// The event kernel still polls every component on any cycle it cannot
// fast-forward. The active kernel (KernelActive) splits the world into
// an active list and a parked list: components whose complete upstream
// set was declared with DependsOn leave the sweep entirely while
// provably inert, and the remaining active list is polled and evaluated
// in a two-pass sweep that can shard across a bounded goroutine pool
// (WithParallelism). Results are byte-identical to every other kernel
// for any shard count; the full design and determinism argument live in
// active.go.
package sim

import (
	"strconv"

	"repro/internal/obs"
)

// Clocked is a synchronous hardware component.
type Clocked interface {
	// Eval computes the component's next state from the currently visible
	// outputs of all components. It must not change any output visible to
	// other components.
	Eval()
	// Commit makes the state computed by Eval visible, modelling the
	// clock edge.
	Commit()
}

// Quiescer is optionally implemented by components that can report having
// no pending work. Quiescent must be true only if Eval+Commit this cycle
// would change nothing externally visible beyond what IdleTick reproduces,
// and must account for all staged work (see the package comment).
type Quiescer interface {
	Quiescent() bool
}

// IdleTicker is optionally implemented by Quiescers whose Commit performs
// uniform per-cycle bookkeeping even when idle — advancing a cycle or slot
// counter, charging the constant idle clock energy to a power meter. The
// kernel calls IdleTick in the Commit phase of every skipped cycle; it must
// reproduce that bookkeeping exactly (same floating-point operations, so
// accumulated energy stays bit-identical to the naive kernel).
type IdleTicker interface {
	IdleTick()
}

// IdleWindower is optionally implemented by IdleTickers whose idle
// bookkeeping for n consecutive cycles can be replayed in one call.
// IdleWindow(n) must leave the component in exactly the state n calls to
// IdleTick would have — including bit-identical accumulated floats — so
// the event kernel can fast-forward a quiescent window in O(1) per
// component instead of O(cycles). Components without it still work under
// the event kernel; the kernel falls back to calling IdleTick n times.
type IdleWindower interface {
	IdleTicker
	// IdleWindow replays n idle cycles of bookkeeping at once.
	IdleWindow(n uint64)
}

// Timed is optionally implemented by components whose quiescence can end
// without any external register changing or mutator being invoked — purely
// because the clock reaches some cycle (a scheduled burst coming due, a
// timeout expiring). NextEvent returns the earliest such absolute cycle,
// or ok=false when no self-scheduled work is pending. The event kernel
// polls NextEvent on fully quiescent cycles and never fast-forwards past
// the reported cycle; the gated and naive kernels ignore it.
type Timed interface {
	NextEvent() (cycle uint64, ok bool)
}

// Waker is optionally implemented by components with staging mutators
// (Push, Inject, PushConfig, Pop) that can be invoked by other components
// during the Eval phase. The kernel calls SetWake at registration; the
// component must invoke the wake function from every such mutator so a
// skip decision already taken this cycle is revised. The wake function is
// safe to call at any time (it is a no-op outside the Eval phase, where
// Quiescent polling covers the staged work instead).
type Waker interface {
	SetWake(func())
}

// Sleeper is optionally implemented by Wakers that can certify a
// stronger form of quiescence: Asleep must be true only while no change
// on any input register the component reads can end its quiescence —
// only one of its own staging mutators (which call the wake function)
// can. Under KernelActive an asleep component parks without a DependsOn
// declaration and receives no upstream-commit notifications; the wake
// closure is its sole re-activation channel, so the component must clear
// the asleep condition before (or upon) the wake function running. The
// other kernels ignore the interface.
type Sleeper interface {
	Waker
	Asleep() bool
}

// Kernel selects the scheduling strategy of a World.
type Kernel int

const (
	// KernelGated is the activity-tracked kernel: quiescent components are
	// skipped, with byte-identical results to KernelNaive. The default.
	KernelGated Kernel = iota
	// KernelNaive evaluates and commits every component every cycle.
	KernelNaive
	// KernelEvent is the event-driven scheduler: per-cycle it behaves
	// like KernelGated, and additionally fast-forwards Run windows in
	// which every component is quiescent to the next timer (WakeAt),
	// self-scheduled component event (NextEvent) or window end,
	// replaying idle bookkeeping in O(components). Byte-identical to
	// both other kernels.
	KernelEvent
	// KernelActive is the O(active) kernel: components whose complete
	// upstream set was declared with DependsOn are parked while
	// provably inert and leave the per-cycle sweep entirely, and the
	// remaining active list is polled/evaluated in a two-pass sweep
	// that optionally shards across a bounded goroutine pool
	// (WithParallelism). Byte-identical to every other kernel for any
	// shard count; see active.go.
	KernelActive
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelGated:
		return "gated"
	case KernelNaive:
		return "naive"
	case KernelEvent:
		return "event"
	case KernelActive:
		return "active"
	default:
		return "kernel(?)"
	}
}

// WorldOption configures a World at construction.
type WorldOption func(*World)

// WithKernel selects the world's kernel (default KernelGated).
func WithKernel(k Kernel) WorldOption {
	return func(w *World) { w.kernel = k }
}

// WithTracer attaches a structured event tracer to the world: the kernel
// emits eval, wake, park/unpark, fast-forward and timer events into it,
// timestamped in cycles. A nil tracer (the default) is the fast path —
// every emission site is a single predictable branch — and tracing never
// influences scheduling, so results are byte-identical with or without
// it. The tracer must be safe for concurrent Emit calls when the active
// kernel's sharded Eval pass is enabled.
func WithTracer(t obs.Tracer) WorldOption {
	return func(w *World) { w.tracer = t }
}

// TraceNamer is optionally implemented by components that want a
// readable trace track name; components without it are tracked by
// registration index.
type TraceNamer interface {
	TraceName() string
}

// kernelTrack is the track kernel-global events (fast-forward, timer)
// are emitted on.
const kernelTrack = "kernel"

// World is an ordered collection of clocked components driven by a common
// clock, with an attached cycle counter.
type World struct {
	components []Clocked
	quiescers  []Quiescer     // parallel to components; nil if not implemented
	idlers     []IdleTicker   // parallel to components; nil if not implemented
	windowers  []IdleWindower // parallel to components; nil if not implemented
	timed      []Timed        // parallel to components; nil if not implemented
	skipped    []bool         // per component, skip decision of the current cycle
	kernel     Kernel
	cycle      uint64

	inEval  bool // currently inside the Eval sweep
	evalPos int  // index of the component whose Eval slot is active

	evals   uint64   // Eval/Commit pairs executed
	skips   uint64   // Eval/Commit pairs skipped
	evalsBy []uint64 // per-component share of evals
	skipsBy []uint64 // per-component share of skips

	allSkipped bool       // last Step skipped every component
	timers     timerWheel // pending WakeAt cycles (event kernel)
	ffWindows  uint64     // fast-forward windows taken
	ffCycles   uint64     // cycles covered by fast-forward

	polls uint64 // Quiescent() polls executed (all kernels)

	// KernelActive state; the parallel slices are maintained under every
	// kernel so DependsOn declarations are kernel-independent, and the
	// per-run scratch lives in as (nil outside KernelActive). See
	// active.go.
	index        map[Clocked]int // component -> registration index
	parkable     []bool          // parallel; DependsOn declared
	sleepers     []Sleeper       // parallel; nil unless the component is a Sleeper
	downstream   [][]int         // parallel; declared dependents
	parked       []bool          // parallel; currently parked
	parkedAt     []uint64        // parallel; first unsettled parked cycle
	parkedCount  int
	sumParkedAt  uint64 // sum of parkedAt over parked components
	activations  uint64 // unpark count
	parallelism  int    // WithParallelism bound; 0 = GOMAXPROCS
	parallelEval bool   // inside the sharded Eval pass: wakes are queued
	as           *activeState

	tracer obs.Tracer // kernel event sink; nil (the default) is the fast path
	tracks []string   // per-component track names, built lazily while tracing
}

// NewWorld returns an empty world. Without options it uses the
// activity-tracked gated kernel.
func NewWorld(opts ...WorldOption) *World {
	w := &World{index: make(map[Clocked]int)}
	for _, o := range opts {
		o(w)
	}
	if w.kernel == KernelActive {
		w.as = &activeState{}
	}
	return w
}

// Kernel returns the world's kernel.
func (w *World) Kernel() Kernel { return w.kernel }

// Add registers components with the world's clock. Nil components are
// rejected so wiring bugs fail fast.
func (w *World) Add(cs ...Clocked) {
	for _, c := range cs {
		if c == nil {
			panic("sim: adding nil component")
		}
		idx := len(w.components)
		w.components = append(w.components, c)
		q, _ := c.(Quiescer)
		w.quiescers = append(w.quiescers, q)
		it, _ := c.(IdleTicker)
		w.idlers = append(w.idlers, it)
		iw, _ := c.(IdleWindower)
		w.windowers = append(w.windowers, iw)
		td, _ := c.(Timed)
		w.timed = append(w.timed, td)
		w.skipped = append(w.skipped, false)
		w.evalsBy = append(w.evalsBy, 0)
		w.skipsBy = append(w.skipsBy, 0)
		w.parkable = append(w.parkable, false)
		sl, _ := c.(Sleeper)
		w.sleepers = append(w.sleepers, sl)
		w.downstream = append(w.downstream, nil)
		w.parked = append(w.parked, false)
		w.parkedAt = append(w.parkedAt, 0)
		w.index[c] = idx
		if w.as != nil {
			// The active kernel sweeps its own list; a component Added
			// mid-run (even mid-cycle) joins it at the next cycle
			// boundary, which is also when the stepping kernels first
			// visit it.
			w.as.joinNew = append(w.as.joinNew, idx)
		}
		if wk, ok := c.(Waker); ok {
			wk.SetWake(w.wakeFn(idx))
		}
	}
}

// wakeFn builds the wake closure handed to Wakers: if the component's Eval
// slot has already passed this cycle and it was skipped, run the missed
// Eval now so the staged work commits this cycle, exactly as it would have
// under the naive kernel. In every other situation the Quiescent poll
// observes the staged work itself and the wake is a no-op — except under
// KernelActive, where a wake also (a) queues the target when raised from
// the sharded Eval pass, (b) unparks a parked target immediately during
// the sweep or drain, and (c) records an unpark request for the next
// cycle when a driver stages work between cycles. The closure captures
// the registration index, which is stable for the world's lifetime even
// when components are Added mid-run.
func (w *World) wakeFn(i int) func() {
	return func() {
		if w.parallelEval {
			a := w.as
			a.wakeMu.Lock()
			a.wakeQ = append(a.wakeQ, i)
			a.wakeMu.Unlock()
			return
		}
		if w.inEval {
			if w.kernel == KernelActive {
				w.wakeActiveKernel(i)
				return
			}
			if i <= w.evalPos && w.skipped[i] {
				w.skipped[i] = false
				if w.tracer != nil {
					w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
						Track: w.track(i), Kind: obs.KindWake})
				}
				w.components[i].Eval()
			}
			return
		}
		if w.kernel == KernelActive && w.parked[i] {
			w.as.pending = append(w.as.pending, i)
		}
	}
}

// track returns component i's trace track name, memoized on first use.
// Only called while a tracer is attached, so untraced worlds never build
// the table.
func (w *World) track(i int) string {
	for len(w.tracks) < len(w.components) {
		w.tracks = append(w.tracks, "")
	}
	if w.tracks[i] == "" {
		if n, ok := w.components[i].(TraceNamer); ok {
			w.tracks[i] = n.TraceName()
		} else {
			w.tracks[i] = "comp" + strconv.Itoa(i)
		}
	}
	return w.tracks[i]
}

// Components returns the number of registered components.
func (w *World) Components() int { return len(w.components) }

// Cycle returns the number of elapsed clock cycles.
func (w *World) Cycle() uint64 { return w.cycle }

// Evals returns the number of Eval/Commit pairs executed so far.
func (w *World) Evals() uint64 { return w.evals }

// Skips returns the number of Eval/Commit pairs the activity-tracked
// kernels skipped, including cycles covered by fast-forward and cycles
// deferred on parked components that have not been settled yet, so the
// count reads identically under every kernel at any time.
func (w *World) Skips() uint64 { return w.skips + w.parkedPendingSkips() }

// ComponentActivity returns the Eval/Commit pairs executed and skipped for
// the i-th registered component (registration order) — the per-component
// activity factor a finer-grained power attribution is keyed by. Skips
// deferred on a parked component are included.
func (w *World) ComponentActivity(i int) (evals, skips uint64) {
	skips = w.skipsBy[i]
	if w.parked[i] {
		skips += w.cycle - w.parkedAt[i]
	}
	return w.evalsBy[i], skips
}

// FastForwards returns how many fast-forward windows the event kernel has
// taken and how many cycles they covered in total.
func (w *World) FastForwards() (windows, cycles uint64) {
	return w.ffWindows, w.ffCycles
}

// Step advances the world by one clock cycle: Eval on every active
// component, then Commit on every active component (IdleTick on the
// skipped ones). Under KernelActive the cycle additionally settles every
// parked component's deferred bookkeeping before returning, so external
// observers of a stepped world read the same state as under the gated
// kernel.
func (w *World) Step() {
	w.step()
	if w.parkedCount > 0 {
		w.flushParked()
	}
}

// step advances one cycle without settling parked components; Run flushes
// once at the end instead of every cycle.
func (w *World) step() {
	if w.kernel == KernelActive {
		w.stepActive()
		return
	}
	gated := w.kernel != KernelNaive
	n0 := len(w.components) // components Added mid-cycle join next cycle
	w.inEval = true
	for i := 0; i < n0; i++ {
		c := w.components[i]
		w.evalPos = i
		if gated && w.quiescers[i] != nil {
			w.polls++
			if w.quiescers[i].Quiescent() {
				w.skipped[i] = true
				continue
			}
		}
		w.skipped[i] = false
		c.Eval()
	}
	w.inEval = false
	all := len(w.components) > 0
	for i := 0; i < n0; i++ {
		if w.skipped[i] {
			w.skips++
			w.skipsBy[i]++
			if w.idlers[i] != nil {
				w.idlers[i].IdleTick()
			}
			continue
		}
		all = false
		w.evals++
		w.evalsBy[i]++
		if w.tracer != nil {
			w.tracer.Emit(obs.Event{Cycle: w.cycle, Scope: obs.ScopeKernel,
				Track: w.track(i), Kind: obs.KindEval})
		}
		w.components[i].Commit()
	}
	if len(w.components) != n0 {
		all = false // a mid-cycle Add must be polled before fast-forward
	}
	w.allSkipped = all
	w.cycle++
}

// Run advances the world by n cycles. Under the event kernel, windows in
// which every component is quiescent are fast-forwarded to the next
// pending timer, self-scheduled component event or the end of the window,
// with the skipped cycles' idle bookkeeping replayed exactly. The active
// kernel does the same over its active list and settles all parked
// bookkeeping before returning.
func (w *World) Run(n int) {
	if n <= 0 {
		return
	}
	switch w.kernel {
	case KernelActive:
		w.runActive(n)
	case KernelEvent:
		end := w.cycle + uint64(n)
		for w.cycle < end {
			w.step()
			if w.allSkipped && w.cycle < end {
				if ff := w.horizon(end) - w.cycle; ff > 0 {
					w.fastForward(ff)
				}
			}
		}
	default:
		for i := 0; i < n; i++ {
			w.step()
		}
	}
}

// RunUntil steps the world until the predicate returns true or maxCycles
// elapse; it reports whether the predicate was satisfied. The predicate is
// evaluated after each cycle, including cycles in which every component was
// quiescent, so a wake-cycle event is observed on the cycle it happens.
// Because the predicate may read Cycle() or any other per-cycle state, the
// event kernel never fast-forwards inside RunUntil — the predicate is a
// monitor, and monitors observe every cycle under every kernel.
func (w *World) RunUntil(pred func() bool, maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		w.Step()
		if pred() {
			return true
		}
	}
	return pred()
}

// Func wraps an Eval/Commit function pair as a Clocked component; handy for
// testbench stimulus and monitors. Func deliberately does not implement
// Quiescer: stimulus and monitors run every cycle under every kernel.
type Func struct {
	// OnEval runs in the Eval phase; may be nil.
	OnEval func()
	// OnCommit runs in the Commit phase; may be nil.
	OnCommit func()
}

// Eval implements Clocked.
func (f *Func) Eval() {
	if f.OnEval != nil {
		f.OnEval()
	}
}

// Commit implements Clocked.
func (f *Func) Commit() {
	if f.OnCommit != nil {
		f.OnCommit()
	}
}
