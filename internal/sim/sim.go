// Package sim provides the synchronous, two-phase simulation kernel used by
// all cycle-accurate NoC models.
//
// Hardware registers sample their inputs on the clock edge; a software model
// must therefore separate "compute next state from current outputs" from
// "commit next state". Every clocked component implements Clocked: during a
// cycle the kernel first calls Eval on every component (all of them observe
// the same pre-edge signal values) and then Commit on every component (all
// outputs advance together). Because the paper's routers register their
// outputs (Section 5.1: "The 20 output lanes of the crossbar are
// registered"), there are no combinational paths between components, and
// components may be evaluated in any order.
package sim

// Clocked is a synchronous hardware component.
type Clocked interface {
	// Eval computes the component's next state from the currently visible
	// outputs of all components. It must not change any output visible to
	// other components.
	Eval()
	// Commit makes the state computed by Eval visible, modelling the
	// clock edge.
	Commit()
}

// World is an ordered collection of clocked components driven by a common
// clock, with an attached cycle counter.
type World struct {
	components []Clocked
	cycle      uint64
}

// NewWorld returns an empty world.
func NewWorld() *World { return &World{} }

// Add registers components with the world's clock. Nil components are
// rejected so wiring bugs fail fast.
func (w *World) Add(cs ...Clocked) {
	for _, c := range cs {
		if c == nil {
			panic("sim: adding nil component")
		}
		w.components = append(w.components, c)
	}
}

// Components returns the number of registered components.
func (w *World) Components() int { return len(w.components) }

// Cycle returns the number of elapsed clock cycles.
func (w *World) Cycle() uint64 { return w.cycle }

// Step advances the world by one clock cycle: Eval on every component, then
// Commit on every component.
func (w *World) Step() {
	for _, c := range w.components {
		c.Eval()
	}
	for _, c := range w.components {
		c.Commit()
	}
	w.cycle++
}

// Run advances the world by n cycles.
func (w *World) Run(n int) {
	for i := 0; i < n; i++ {
		w.Step()
	}
}

// RunUntil steps the world until the predicate returns true or maxCycles
// elapse; it reports whether the predicate was satisfied. The predicate is
// evaluated after each cycle.
func (w *World) RunUntil(pred func() bool, maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		w.Step()
		if pred() {
			return true
		}
	}
	return pred()
}

// Func wraps an Eval/Commit function pair as a Clocked component; handy for
// testbench stimulus and monitors.
type Func struct {
	// OnEval runs in the Eval phase; may be nil.
	OnEval func()
	// OnCommit runs in the Commit phase; may be nil.
	OnCommit func()
}

// Eval implements Clocked.
func (f *Func) Eval() {
	if f.OnEval != nil {
		f.OnEval()
	}
}

// Commit implements Clocked.
func (f *Func) Commit() {
	if f.OnCommit != nil {
		f.OnCommit()
	}
}
