package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// pulser is quiescent except on multiples of period, when it bumps a
// counter; it exposes the full idle-bookkeeping surface so every kernel
// schedules it exactly.
type pulser struct {
	period uint64
	cycle  uint64
	n      uint64
}

func (p *pulser) Eval()   {}
func (p *pulser) Commit() { p.n++; p.cycle++ }
func (p *pulser) Quiescent() bool {
	return (p.cycle+1)%p.period != 0
}
func (p *pulser) IdleTick()           { p.cycle++ }
func (p *pulser) IdleWindow(n uint64) { p.cycle += n }
func (p *pulser) TraceName() string   { return "pulser" }
func (p *pulser) NextEvent() (uint64, bool) {
	next := ((p.cycle / p.period) + 1) * p.period
	return next - 1, true
}

// TestTracerKernelEvents checks the kernel emits cycle-stamped eval and
// fast-forward events and that an attached tracer does not change the
// simulated outcome.
func TestTracerKernelEvents(t *testing.T) {
	for _, k := range []sim.Kernel{sim.KernelGated, sim.KernelNaive, sim.KernelEvent, sim.KernelActive} {
		t.Run(k.String(), func(t *testing.T) {
			run := func(tr obs.Tracer) *pulser {
				p := &pulser{period: 8}
				opts := []sim.WorldOption{sim.WithKernel(k)}
				if tr != nil {
					opts = append(opts, sim.WithTracer(tr))
				}
				w := sim.NewWorld(opts...)
				w.Add(p)
				w.Run(32)
				return p
			}
			plain := run(nil)
			c := obs.NewCollector()
			traced := run(c)
			if plain.n != traced.n || plain.cycle != traced.cycle {
				t.Fatalf("tracer changed the run: plain %+v traced %+v", plain, traced)
			}

			evalCycles := map[uint64]bool{}
			for _, e := range c.Events() {
				if e.Scope != obs.ScopeKernel {
					t.Fatalf("unexpected scope in kernel trace: %+v", e)
				}
				if e.Kind == obs.KindEval {
					if e.Track != "pulser" {
						t.Fatalf("TraceNamer not honoured: %+v", e)
					}
					evalCycles[e.Cycle] = true
				}
			}
			// The pulser works on cycles 7, 15, 23, 31 under every kernel.
			for _, want := range []uint64{7, 15, 23, 31} {
				if !evalCycles[want] {
					t.Fatalf("kernel %v: no eval event at cycle %d (got %v)", k, want, evalCycles)
				}
			}
			if k == sim.KernelNaive && len(evalCycles) != 32 {
				t.Fatalf("naive kernel should eval every cycle, got %d", len(evalCycles))
			}
			if k != sim.KernelNaive && len(evalCycles) != 4 {
				t.Fatalf("kernel %v should eval only on pulse cycles, got %v", k, evalCycles)
			}
		})
	}
}

// TestTracerDeterministicAcrossShards: the active kernel's kernel-event
// stream is identical for any shard count.
func TestTracerDeterministicAcrossShards(t *testing.T) {
	run := func(workers int) []obs.Event {
		c := obs.NewCollector()
		w := sim.NewWorld(sim.WithKernel(sim.KernelActive),
			sim.WithParallelism(workers), sim.WithTracer(c))
		// Enough components to clear the parallel cutover.
		for i := 0; i < 300; i++ {
			w.Add(&pulser{period: uint64(3 + i%5)})
		}
		w.Run(40)
		return c.Events()
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("active-kernel trace differs between shard counts")
	}
}

// TestTracerTimerEvent: WakeAt is traced on the kernel track.
func TestTracerTimerEvent(t *testing.T) {
	c := obs.NewCollector()
	w := sim.NewWorld(sim.WithKernel(sim.KernelEvent), sim.WithTracer(c))
	w.Add(&pulser{period: 1 << 60}) // effectively always idle
	if err := w.WakeAt(5); err != nil {
		t.Fatal(err)
	}
	w.Run(10)
	var timer, ff bool
	for _, e := range c.Events() {
		if e.Track == "kernel" && e.Kind == obs.KindTimer && e.Value == 5 {
			timer = true
		}
		if e.Track == "kernel" && e.Kind == obs.KindFastForward {
			ff = true
		}
	}
	if !timer {
		t.Fatal("no timer event traced")
	}
	if !ff {
		t.Fatal("no fast-forward event traced")
	}
}
