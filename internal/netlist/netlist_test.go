package netlist

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stdcell"
)

var lib = stdcell.Default013()

func TestComponentArea(t *testing.T) {
	c := Component{Name: "x", DFFs: 10, BufBits: 20, CombGE: 30}
	want := lib.GE(10*lib.DFFAreaGE+20*lib.BufBitAreaGE) + lib.GE(30)
	if got := c.Area(lib); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Area = %v, want %v", got, want)
	}
}

func TestComponentAddScale(t *testing.T) {
	a := Component{Name: "a", DFFs: 1, BufBits: 2, CombGE: 3}
	b := Component{Name: "b", DFFs: 10, BufBits: 20, CombGE: 30}
	s := a.Add(b)
	if s.Name != "a" || s.DFFs != 11 || s.BufBits != 22 || s.CombGE != 33 {
		t.Fatalf("Add = %+v", s)
	}
	m := a.Scale(4)
	if m.DFFs != 4 || m.BufBits != 8 || m.CombGE != 12 {
		t.Fatalf("Scale = %+v", m)
	}
}

func TestClockEnergy(t *testing.T) {
	c := Component{DFFs: 100, BufBits: 1000}
	want := 100*lib.EClkDFF + 1000*lib.EClkBufBit
	if got := c.ClockEnergyPerCycle(lib); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ClockEnergyPerCycle = %v, want %v", got, want)
	}
}

func TestDesignRollup(t *testing.T) {
	d := Design{Name: "d", CriticalPathFO4: 10}
	d.AddBlock(RegisterBank("regs", 100))
	d.AddBlock(FIFO(lib, "fifo", 16, 8))
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tot := d.TotalCells()
	if tot.DFFs != 100+2*4 { // 100 regs + two 4-bit pointers (depth 8 -> 3+1 bits)
		t.Fatalf("total DFFs = %d", tot.DFFs)
	}
	if tot.BufBits != 16*8 {
		t.Fatalf("total buf bits = %d", tot.BufBits)
	}
	if d.AreaUM2(lib) <= d.TotalCells().Area(lib) {
		t.Fatal("synthesis overhead not applied")
	}
	if _, ok := d.Block("fifo"); !ok {
		t.Fatal("Block lookup failed")
	}
	if _, ok := d.Block("nope"); ok {
		t.Fatal("Block lookup found nonexistent block")
	}
	if d.BlockAreaMM2(lib, "nope") != 0 {
		t.Fatal("BlockAreaMM2 of missing block should be 0")
	}
}

func TestDesignValidateErrors(t *testing.T) {
	cases := map[string]Design{
		"no name":   {Blocks: []Component{{Name: "a"}}},
		"no blocks": {Name: "d"},
		"negative":  {Name: "d", Blocks: []Component{{Name: "a", DFFs: -1}}},
		"duplicate": {Name: "d", Blocks: []Component{{Name: "a"}, {Name: "a"}}},
		"neg path":  {Name: "d", Blocks: []Component{{Name: "a"}}, CriticalPathFO4: -1},
	}
	for name, d := range cases {
		if d.Validate() == nil {
			t.Errorf("%s: Validate accepted invalid design", name)
		}
	}
}

func TestMuxTree(t *testing.T) {
	if got := MuxTreeGE(lib, 16); math.Abs(got-15*lib.Mux2AreaGE) > 1e-9 {
		t.Fatalf("MuxTreeGE(16) = %v", got)
	}
	if got := MuxTreeDepthFO4(16); math.Abs(got-0.9*4) > 1e-9 {
		t.Fatalf("MuxTreeDepthFO4(16) = %v", got)
	}
	if MuxTreeGE(lib, 1) != 0 {
		t.Fatal("1:1 mux should be free")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on 0-way mux")
		}
	}()
	MuxTreeGE(lib, 0)
}

func TestCrossbarShape(t *testing.T) {
	// The paper's 16x20 crossbar of 5-bit lanes (4 data + 1 ack return).
	c := Crossbar(lib, "crossbar", 16, 20, 5)
	if c.DFFs != 100 {
		t.Fatalf("crossbar output registers = %d, want 100", c.DFFs)
	}
	if c.CombGE < 15*lib.Mux2AreaGE*100 {
		t.Fatal("crossbar mux logic undersized")
	}
	// Crossbar area must grow superlinearly with width*outputs.
	small := Crossbar(lib, "s", 4, 4, 4)
	if small.Area(lib) >= c.Area(lib) {
		t.Fatal("crossbar area not monotone in size")
	}
}

func TestFIFOShape(t *testing.T) {
	f := FIFO(lib, "f", 17, 8)
	if f.BufBits != 17*8 {
		t.Fatalf("FIFO storage = %d bits", f.BufBits)
	}
	if f.DFFs != 8 { // 2 pointers of ceil(log2 8)+1 = 4 bits
		t.Fatalf("FIFO pointer DFFs = %d, want 8", f.DFFs)
	}
}

func TestArbiterShape(t *testing.T) {
	a := RoundRobinArbiter("arb", 20)
	if a.DFFs != 5 {
		t.Fatalf("arbiter DFFs = %d, want 5 (pointer only)", a.DFFs)
	}
	if a.CombGE <= 0 {
		t.Fatal("arbiter has no logic")
	}
}

func TestShiftFIFOShape(t *testing.T) {
	f := ShiftFIFO("f", 18, 8)
	if f.BufBits != 18*8 {
		t.Fatalf("shift FIFO storage = %d bits", f.BufBits)
	}
	if f.CombGE <= 0 {
		t.Fatal("shift FIFO has no shift-enable logic")
	}
	// Unlike the register-file FIFO it has no read multiplexer, so for the
	// same geometry it must be smaller.
	if f.Area(lib) >= FIFO(lib, "g", 18, 8).Area(lib) {
		t.Fatal("shift FIFO should be the compact option")
	}
}

func TestConfigMemoryShape(t *testing.T) {
	// Paper: 5x20 = 100 bits of configuration per router.
	c := ConfigMemory("configuration", 100)
	if c.DFFs != 100 {
		t.Fatalf("config bits = %d, want 100", c.DFFs)
	}
}

func TestSlotTableShape(t *testing.T) {
	s := SlotTable("slots", 32, 18)
	if s.BufBits != 32*18 {
		t.Fatalf("slot table bits = %d", s.BufBits)
	}
	if s.DFFs != 5 {
		t.Fatalf("slot counter = %d bits, want 5", s.DFFs)
	}
}

func TestBuildersPanicOnNegative(t *testing.T) {
	for name, f := range map[string]func(){
		"RegisterBank": func() { RegisterBank("r", -1) },
		"Crossbar":     func() { Crossbar(lib, "c", -1, 2, 3) },
		"FIFO":         func() { FIFO(lib, "f", 4, -2) },
		"Arbiter":      func() { RoundRobinArbiter("a", -3) },
		"Config":       func() { ConfigMemory("c", -1) },
		"SlotTable":    func() { SlotTable("s", -1, 4) },
		"Shift":        func() { ShiftRegister("s", -1) },
		"Counter":      func() { Counter("c", -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReportContainsBlocks(t *testing.T) {
	d := Design{Name: "router", CriticalPathFO4: 9}
	d.AddBlock(RegisterBank("regs", 10))
	r := d.Report(lib)
	for _, want := range []string{"router", "regs", "total", "fmax"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestAreaAdditivityProperty(t *testing.T) {
	// Area of a scaled component equals n times the area of one instance.
	f := func(dff, buf uint8, n uint8) bool {
		c := Component{Name: "c", DFFs: int(dff), BufBits: int(buf), CombGE: float64(dff) * 1.5}
		k := int(n%8) + 1
		return math.Abs(c.Scale(k).Area(lib)-float64(k)*c.Area(lib)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreqFromDesign(t *testing.T) {
	d := Design{Name: "d", Blocks: []Component{{Name: "b"}}, CriticalPathFO4: 10.3}
	want := lib.MaxFreqMHz(10.3)
	if got := d.MaxFreqMHz(lib); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxFreqMHz = %v, want %v", got, want)
	}
}
