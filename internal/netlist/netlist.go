// Package netlist provides structural hardware description: composable
// component builders (register banks, multiplexer trees, crossbars, FIFOs,
// arbiters, configuration memories) whose cell counts determine area,
// leakage and clock load when priced with a stdcell.Lib.
//
// This is the reproduction's stand-in for the paper's synthesis flow: the
// routers are described as netlists of reference cells, and Table 4's area
// breakdown, maximum frequency and per-block power coefficients are rolled
// up from those netlists instead of from a proprietary Synopsys run.
package netlist

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stdcell"
)

// Component is one logical block of a design (e.g. "crossbar",
// "buffering"), described by its cell census.
type Component struct {
	// Name labels the block; Table 4 uses the names crossbar, buffering,
	// arbitration, configuration, data converter and misc.
	Name string

	// DFFs is the number of discrete flip-flops (pipeline registers,
	// state machines, counters, configuration bits).
	DFFs int

	// BufBits is the number of FIFO/register-file storage bits. They are
	// priced with the denser BufBit cell and the lighter clock load.
	BufBits int

	// CombGE is the combinational logic in NAND2 gate equivalents
	// (multiplexers, decoders, arbitration logic).
	CombGE float64
}

// Area returns the component's cell area in µm² (before synthesis overhead).
func (c Component) Area(lib stdcell.Lib) float64 {
	return lib.GE(float64(c.DFFs)*lib.DFFAreaGE+
		float64(c.BufBits)*lib.BufBitAreaGE) + lib.GE(c.CombGE)
}

// ClockEnergyPerCycle returns the energy in fJ the component draws from the
// clock network every cycle (the paper's dynamic-power offset).
func (c Component) ClockEnergyPerCycle(lib stdcell.Lib) float64 {
	return float64(c.DFFs)*lib.EClkDFF + float64(c.BufBits)*lib.EClkBufBit
}

// Add returns the cell-wise sum of two components, keeping c's name.
func (c Component) Add(o Component) Component {
	c.DFFs += o.DFFs
	c.BufBits += o.BufBits
	c.CombGE += o.CombGE
	return c
}

// Scale returns the component with all cell counts multiplied by n
// (n identical instances).
func (c Component) Scale(n int) Component {
	c.DFFs *= n
	c.BufBits *= n
	c.CombGE *= float64(n)
	return c
}

// Design is a named collection of components plus a critical-path estimate.
type Design struct {
	// Name identifies the design (e.g. "circuit-switched router").
	Name string

	// Blocks are the design's components in presentation order.
	Blocks []Component

	// CriticalPathFO4 is the deepest register-to-register combinational
	// path in FO4 units; it determines the maximum clock frequency.
	CriticalPathFO4 float64
}

// AddBlock appends a component to the design.
func (d *Design) AddBlock(c Component) { d.Blocks = append(d.Blocks, c) }

// Block returns the component with the given name and whether it exists.
func (d *Design) Block(name string) (Component, bool) {
	for _, b := range d.Blocks {
		if b.Name == name {
			return b, true
		}
	}
	return Component{}, false
}

// TotalCells returns the summed cell census of all blocks.
func (d *Design) TotalCells() Component {
	t := Component{Name: d.Name}
	for _, b := range d.Blocks {
		t = t.Add(b)
	}
	return t
}

// AreaUM2 returns the design's total area in µm² including the library's
// synthesis overhead (clock tree, wire buffers, utilisation).
func (d *Design) AreaUM2(lib stdcell.Lib) float64 {
	return d.TotalCells().Area(lib) * lib.SynthOverhead
}

// AreaMM2 returns the total area in mm² including synthesis overhead.
func (d *Design) AreaMM2(lib stdcell.Lib) float64 { return d.AreaUM2(lib) / 1e6 }

// BlockAreaMM2 returns the named block's area in mm² including overhead, or
// 0 if the block does not exist.
func (d *Design) BlockAreaMM2(lib stdcell.Lib, name string) float64 {
	b, ok := d.Block(name)
	if !ok {
		return 0
	}
	return b.Area(lib) * lib.SynthOverhead / 1e6
}

// LeakageUW returns the design's static power in µW.
func (d *Design) LeakageUW(lib stdcell.Lib) float64 {
	return lib.LeakageUW(d.AreaUM2(lib))
}

// ClockEnergyPerCycle returns the whole design's per-cycle clock energy in
// fJ (ungated).
func (d *Design) ClockEnergyPerCycle(lib stdcell.Lib) float64 {
	var e float64
	for _, b := range d.Blocks {
		e += b.ClockEnergyPerCycle(lib)
	}
	return e
}

// MaxFreqMHz returns the design's maximum clock frequency in MHz.
func (d *Design) MaxFreqMHz(lib stdcell.Lib) float64 {
	return lib.MaxFreqMHz(d.CriticalPathFO4)
}

// Report renders a per-block area table, for debugging and the synthesis
// tool. Blocks appear in insertion order.
func (d *Design) Report(lib stdcell.Lib) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (critical path %.1f FO4, fmax %.0f MHz)\n",
		d.Name, d.CriticalPathFO4, d.MaxFreqMHz(lib))
	for _, blk := range d.Blocks {
		fmt.Fprintf(&b, "  %-16s %8.4f mm²  (%5d DFF, %5d buf bits, %7.0f GE comb)\n",
			blk.Name, blk.Area(lib)*lib.SynthOverhead/1e6, blk.DFFs, blk.BufBits, blk.CombGE)
	}
	fmt.Fprintf(&b, "  %-16s %8.4f mm²\n", "total", d.AreaMM2(lib))
	return b.String()
}

// Validate checks structural sanity: non-empty, unique block names,
// non-negative counts.
func (d *Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("netlist: design without name")
	}
	if len(d.Blocks) == 0 {
		return fmt.Errorf("netlist: design %q has no blocks", d.Name)
	}
	names := make([]string, 0, len(d.Blocks))
	for _, b := range d.Blocks {
		if b.DFFs < 0 || b.BufBits < 0 || b.CombGE < 0 {
			return fmt.Errorf("netlist: block %q has negative cell counts", b.Name)
		}
		names = append(names, b.Name)
	}
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			return fmt.Errorf("netlist: duplicate block name %q", names[i])
		}
	}
	if d.CriticalPathFO4 < 0 {
		return fmt.Errorf("netlist: negative critical path")
	}
	return nil
}

// --- Component builders -------------------------------------------------

// RegisterBank returns a bank of n flip-flops.
func RegisterBank(name string, n int) Component {
	mustNonNeg("RegisterBank", n)
	return Component{Name: name, DFFs: n}
}

// MuxTreeGE returns the gate-equivalent cost of an n:1 multiplexer of one
// bit, built from 2:1 stages: an n:1 mux needs n-1 two-input muxes.
func MuxTreeGE(lib stdcell.Lib, ways int) float64 {
	if ways < 1 {
		panic("netlist: mux with no inputs")
	}
	return float64(ways-1) * lib.Mux2AreaGE
}

// MuxTreeDepthFO4 returns the delay of an n:1 mux tree in FO4 units. Each
// 2:1 stage costs about 0.9 FO4 including its select buffering.
func MuxTreeDepthFO4(ways int) float64 {
	if ways < 1 {
		panic("netlist: mux with no inputs")
	}
	return 0.9 * math.Ceil(math.Log2(float64(ways)))
}

// Crossbar returns an inputs×outputs crossbar of the given bit width with
// registered outputs, as used by both routers. Per output bit it costs an
// inputs:1 mux tree plus one output flip-flop; the select decode adds a
// small per-output overhead.
func Crossbar(lib stdcell.Lib, name string, inputs, outputs, width int) Component {
	mustNonNeg("Crossbar", inputs, outputs, width)
	muxGE := MuxTreeGE(lib, inputs) * float64(outputs*width)
	decodeGE := 3.0 * float64(outputs) * math.Ceil(math.Log2(math.Max(float64(inputs), 2)))
	return Component{
		Name:   name,
		DFFs:   outputs * width,
		CombGE: muxGE + decodeGE,
	}
}

// FIFO returns a width×depth first-in first-out buffer implemented as a
// register file with read multiplexing plus read/write pointers and
// full/empty logic.
func FIFO(lib stdcell.Lib, name string, width, depth int) Component {
	mustNonNeg("FIFO", width, depth)
	ptrBits := int(math.Ceil(math.Log2(math.Max(float64(depth), 2)))) + 1
	return Component{
		Name:    name,
		BufBits: width * depth,
		DFFs:    2 * ptrBits, // read and write pointer
		// Read mux across depth entries plus ~6 GE of full/empty/credit
		// bookkeeping per FIFO.
		CombGE: MuxTreeGE(lib, depth)*float64(width) + 6,
	}
}

// ShiftFIFO returns a width×depth FIFO implemented as a shift register with
// latch-based storage bits and a fill counter — the compact style small NoC
// routers synthesize to; unlike FIFO it needs no read multiplexer.
func ShiftFIFO(name string, width, depth int) Component {
	mustNonNeg("ShiftFIFO", width, depth)
	cntBits := int(math.Ceil(math.Log2(float64(depth)+1))) + 1
	return Component{
		Name:    name,
		BufBits: width * depth,
		DFFs:    cntBits,
		CombGE:  0.8 * float64(width*depth), // shift enables
	}
}

// RoundRobinArbiter returns an n-requester round-robin arbiter: a rotating
// priority pointer plus the grant logic (~2 GE per requester).
func RoundRobinArbiter(name string, n int) Component {
	mustNonNeg("RoundRobinArbiter", n)
	ptrBits := int(math.Ceil(math.Log2(math.Max(float64(n), 2))))
	return Component{
		Name:   name,
		DFFs:   ptrBits,
		CombGE: 2 * float64(n),
	}
}

// ConfigMemory returns a configuration store of n bits with a load decoder,
// as used by the circuit-switched router (5 bits per output lane).
func ConfigMemory(name string, bits int) Component {
	mustNonNeg("ConfigMemory", bits)
	return Component{
		Name:   name,
		DFFs:   bits,
		CombGE: 1.5 * float64(bits) / 5, // write decode per 5-bit entry
	}
}

// SlotTable returns a TDM slot table of slots×entryBits storage bits plus a
// slot counter, as used by the Æthereal-style router.
func SlotTable(name string, slots, entryBits int) Component {
	mustNonNeg("SlotTable", slots, entryBits)
	ctr := int(math.Ceil(math.Log2(math.Max(float64(slots), 2))))
	return Component{
		Name:    name,
		BufBits: slots * entryBits,
		DFFs:    ctr,
		CombGE:  float64(entryBits) * 2,
	}
}

// ShiftRegister returns an n-bit shift register (serializer/deserializer
// datapath of the data converter).
func ShiftRegister(name string, bits int) Component {
	mustNonNeg("ShiftRegister", bits)
	return Component{Name: name, DFFs: bits, CombGE: 0.5 * float64(bits)}
}

// Counter returns an n-bit counter with increment logic (~2.5 GE/bit).
func Counter(name string, bits int) Component {
	mustNonNeg("Counter", bits)
	return Component{Name: name, DFFs: bits, CombGE: 2.5 * float64(bits)}
}

func mustNonNeg(what string, ns ...int) {
	for _, n := range ns {
		if n < 0 {
			panic(fmt.Sprintf("netlist: %s with negative parameter", what))
		}
	}
}
