package obs

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChrome writes events as Chrome trace-event JSON (the format
// Perfetto and chrome://tracing open): one process per sweep cell, one
// thread per track, instant events with the cycle number as the
// timestamp. The viewer displays timestamps as microseconds; here 1 µs
// reads as 1 cycle. Events are canonically sorted first, so the output
// is byte-identical for any emission interleaving.
func WriteChrome(w io.Writer, evs []Event) error {
	sorted := make([]Event, len(evs))
	copy(sorted, evs)
	SortEvents(sorted)

	// Assign one thread id per (cell, track) in sorted order, so ids are
	// deterministic, and name processes/threads with metadata events.
	type key struct {
		cell  int
		track string
	}
	tids := make(map[key]int)
	var keys []key
	for _, e := range sorted {
		k := key{e.Cell, e.Track}
		if _, ok := tids[k]; !ok {
			tids[k] = 0
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cell != keys[j].cell {
			return keys[i].cell < keys[j].cell
		}
		return keys[i].track < keys[j].track
	})
	for i, k := range keys {
		tids[k] = i + 1
	}

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	type meta struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	lastCell := -1
	for _, k := range keys {
		if k.cell != lastCell {
			lastCell = k.cell
			if err := emit(meta{Name: "process_name", Ph: "M", Pid: k.cell,
				Args: map[string]string{"name": fmt.Sprintf("cell %d", k.cell)}}); err != nil {
				return err
			}
		}
		if err := emit(meta{Name: "thread_name", Ph: "M", Pid: k.cell, Tid: tids[k],
			Args: map[string]string{"name": k.track}}); err != nil {
			return err
		}
	}

	type args struct {
		Scope  string `json:"scope"`
		Value  int64  `json:"value"`
		Detail string `json:"detail,omitempty"`
	}
	type instant struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   uint64 `json:"ts"`
		Pid  int    `json:"pid"`
		Tid  int    `json:"tid"`
		S    string `json:"s"`
		Args args   `json:"args"`
	}
	for _, e := range sorted {
		ev := instant{
			Name: e.Kind, Ph: "i", Ts: e.Cycle,
			Pid: e.Cell, Tid: tids[key{e.Cell, e.Track}], S: "t",
			Args: args{Scope: e.Scope.String(), Value: e.Value, Detail: e.Detail},
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// binaryMagic heads the compact binary trace format: a string table
// followed by varint-packed events, all counts and values as varints.
const binaryMagic = "NOCTRACE1\n"

// WriteBinary writes events in the compact binary trace format. Events
// are canonically sorted first, so the bytes are deterministic.
func WriteBinary(w io.Writer, evs []Event) error {
	sorted := make([]Event, len(evs))
	copy(sorted, evs)
	SortEvents(sorted)

	// Deduplicated, sorted string table over tracks, kinds and details.
	strIdx := make(map[string]int)
	var strs []string
	for _, e := range sorted {
		for _, s := range [...]string{e.Track, e.Kind, e.Detail} {
			if _, ok := strIdx[s]; !ok {
				strIdx[s] = 0
				strs = append(strs, s)
			}
		}
	}
	sort.Strings(strs)
	for i, s := range strs {
		strIdx[s] = i
	}

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(uint64(len(strs))); err != nil {
		return err
	}
	for _, s := range strs {
		if err := putU(uint64(len(s))); err != nil {
			return err
		}
		if _, err := io.WriteString(bw, s); err != nil {
			return err
		}
	}
	if err := putU(uint64(len(sorted))); err != nil {
		return err
	}
	for _, e := range sorted {
		if err := putU(e.Cycle); err != nil {
			return err
		}
		if err := putU(uint64(e.Cell)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Scope)); err != nil {
			return err
		}
		if err := putU(uint64(strIdx[e.Track])); err != nil {
			return err
		}
		if err := putU(uint64(strIdx[e.Kind])); err != nil {
			return err
		}
		if err := putI(e.Value); err != nil {
			return err
		}
		if err := putU(uint64(strIdx[e.Detail])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a compact binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("obs: reading trace magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("obs: not a binary trace (bad magic %q)", magic)
	}
	nStr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("obs: reading string count: %w", err)
	}
	const maxStrings = 1 << 24
	if nStr > maxStrings {
		return nil, fmt.Errorf("obs: string table too large (%d)", nStr)
	}
	strs := make([]string, nStr)
	for i := range strs {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: reading string length: %w", err)
		}
		if l > 1<<20 {
			return nil, fmt.Errorf("obs: string too long (%d)", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("obs: reading string: %w", err)
		}
		strs[i] = string(b)
	}
	str := func(i uint64) (string, error) {
		if i >= nStr {
			return "", fmt.Errorf("obs: string index %d out of %d", i, nStr)
		}
		return strs[i], nil
	}
	nEv, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("obs: reading event count: %w", err)
	}
	var evs []Event
	for i := uint64(0); i < nEv; i++ {
		var e Event
		if e.Cycle, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		cell, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		e.Cell = int(cell)
		sc, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		e.Scope = Scope(sc)
		ti, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		if e.Track, err = str(ti); err != nil {
			return nil, err
		}
		ki, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		if e.Kind, err = str(ki); err != nil {
			return nil, err
		}
		if e.Value, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		di, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", i, err)
		}
		if e.Detail, err = str(di); err != nil {
			return nil, err
		}
		evs = append(evs, e)
	}
	return evs, nil
}
