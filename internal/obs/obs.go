// Package obs is the deterministic observability layer of the simulator:
// structured event tracing and a typed metrics registry, both designed so
// that enabling them cannot perturb a run.
//
// Two properties carry that guarantee. First, every event is timestamped
// in simulation cycles, never wall-clock, so two runs of the same seed
// produce the same trace bytes and traces are diffable across kernels,
// worker counts and machines. Second, the hooks are pull-free: simulation
// code emits into a Tracer only behind a call-site nil check (enforced by
// the obspure analyzer), so a disabled tracer costs one predictable
// branch and no argument construction — the nil-tracer fast path the
// kernel benchmarks gate at <2%.
//
// Under the active kernel's sharded Eval pass events are emitted
// concurrently, so a Collector serialises appends with a mutex and the
// exporters canonically sort events before writing (cell, cycle, scope,
// track, kind, value, detail). Per-track relative order is already
// deterministic — a component emits at most once per (cycle, kind, value)
// — so the sort normalises away only the scheduler-dependent cross-track
// interleaving and exported traces are byte-identical for any shard
// count.
package obs

import (
	"sort"
	"sync"
)

// Scope classifies an event stream by what it is allowed to depend on.
type Scope uint8

const (
	// ScopeDomain events record simulation facts (flow setup, word
	// injection, flit delivery) that are byte-identical under every
	// kernel — the cross-kernel half of the trace-equivalence test.
	ScopeDomain Scope = iota
	// ScopeKernel events record scheduling decisions (eval, park, wake,
	// fast-forward, timer) of the selected kernel. They are deterministic
	// per kernel (including across shard counts) but differ between
	// kernels by design.
	ScopeKernel
)

// String names the scope.
func (s Scope) String() string {
	if s == ScopeKernel {
		return "kernel"
	}
	return "domain"
}

// Event kinds emitted by the simulation layers. Kinds are ordinary
// strings so domain layers can add their own without touching this
// package.
const (
	KindEval           = "eval"
	KindWake           = "wake"
	KindPark           = "park"
	KindUnpark         = "unpark"
	KindFastForward    = "fast-forward"
	KindTimer          = "timer"
	KindFlowSetup      = "flow-setup"
	KindFlowTeardown   = "flow-teardown"
	KindAdmissionBlock = "admission-block"
	KindInject         = "inject"
	KindDeliver        = "deliver"
	KindCacheHit       = "cache-hit"
	KindCacheMiss      = "cache-miss"
	KindWarmFork       = "warm-fork"
)

// Event is one traced occurrence, timestamped in simulation cycles.
type Event struct {
	// Cycle is the simulation cycle the event happened on.
	Cycle uint64
	// Cell distinguishes sweep cells sharing one Collector; 0 outside
	// sweeps. Exporters map it to the Chrome trace process id.
	Cell int
	// Scope separates kernel-scheduling events from domain events.
	Scope Scope
	// Track is the emitting component or subsystem; exporters map it to
	// one Chrome trace thread per track.
	Track string
	// Kind is the event type (one of the Kind constants, or a domain
	// layer's own).
	Kind string
	// Value is the event's numeric payload (flow id, window length,
	// latency); 0 when the kind carries none.
	Value int64
	// Detail is an optional free-form annotation. Emitting code must
	// build it without calling non-obs functions (the obspure contract),
	// so prefer precomputed strings.
	Detail string
}

// less is the canonical event order every exporter applies: all fields
// compare, so two sorted traces are equal iff their event multisets are.
func less(a, b Event) bool {
	switch {
	case a.Cell != b.Cell:
		return a.Cell < b.Cell
	case a.Cycle != b.Cycle:
		return a.Cycle < b.Cycle
	case a.Scope != b.Scope:
		return a.Scope < b.Scope
	case a.Track != b.Track:
		return a.Track < b.Track
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.Value != b.Value:
		return a.Value < b.Value
	default:
		return a.Detail < b.Detail
	}
}

// SortEvents sorts events into the canonical exporter order in place.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return less(evs[i], evs[j]) })
}

// Tracer receives events. Implementations must be safe for concurrent
// Emit calls: the active kernel's sharded Eval pass emits from multiple
// goroutines. Simulation code must nil-check its tracer at every call
// site (the obspure analyzer enforces this) so the disabled path skips
// argument construction entirely.
type Tracer interface {
	Emit(Event)
}

// Collector is the standard Tracer: a mutex-protected in-memory buffer
// whose accessors and exporters return events in canonical order.
type Collector struct {
	mu  sync.Mutex
	evs []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
}

// Len returns the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

// Events returns a copy of the collected events in canonical order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	out := make([]Event, len(c.evs))
	copy(out, c.evs)
	c.mu.Unlock()
	SortEvents(out)
	return out
}

// CellTracer stamps every forwarded event with a sweep-cell index, so
// concurrent cells share one Collector without colliding tracks.
type CellTracer struct {
	T    Tracer
	Cell int
}

// Emit implements Tracer.
func (t CellTracer) Emit(e Event) {
	e.Cell = t.Cell
	t.T.Emit(e)
}

// Hooks bundles the per-run observability sinks threaded through the
// simulation layers. The zero value (all nil) is fully disabled; every
// use is nil-guarded at the call site.
type Hooks struct {
	// Tracer receives structured events; nil disables tracing.
	Tracer Tracer
	// Metrics is the run's metrics registry; nil disables the optional
	// hot-path instruments (control-path metrics are scraped after the
	// run instead).
	Metrics *Registry
}
