package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry: counters, gauges and histograms
// keyed by name, with a deterministic sorted Snapshot. Get-or-create
// accessors are safe for concurrent use, but hot paths should hoist the
// returned instrument once at construction time and guard each use with
// a call-site nil check (the obspure contract) so a disabled registry
// costs nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, whose methods are no-ops, so disabled
// metrics need no special-casing beyond the call-site nil check.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// checkName panics when name is already registered under another kind —
// a wiring bug that would otherwise silently split the metric.
func (r *Registry) checkName(name, kind string) {
	have := ""
	if _, ok := r.counters[name]; ok {
		have = "counter"
	} else if _, ok := r.gauges[name]; ok {
		have = "gauge"
	} else if _, ok := r.hists[name]; ok {
		have = "histogram"
	}
	if have != "" && have != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as %s", name, have, kind))
	}
}

// Counter is a monotonically increasing uint64, safe for concurrent
// Add calls (the sharded Eval pass may increment from several shards).
type Counter struct{ v atomic.Uint64 }

// Add increments the counter; no-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins signed level.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current level; no-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the gauge's level; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations in power-of-two buckets: bucket i holds
// values whose bit length is i (bucket 0 holds zero), so the 65 buckets
// cover the full uint64 range with no configuration.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     uint64
	buckets [65]uint64
}

// Observe records one value; no-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
	h.mu.Unlock()
}

// Bucket is one non-empty histogram bucket: Count observations with
// values <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Sample is one metric in a deterministic snapshot.
type Sample struct {
	// Name is the metric name.
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value is the counter value, the gauge level, or the histogram's
	// observation count.
	Value int64 `json:"value"`
	// Sum is the histogram's observation sum; 0 otherwise.
	Sum uint64 `json:"sum,omitempty"`
	// Buckets are the histogram's non-empty buckets in ascending order;
	// nil otherwise.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// bucketLe returns bucket i's inclusive upper bound.
func bucketLe(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}

// Snapshot returns every registered metric as a Sample, sorted by name —
// the deterministic surface Result.Metrics exposes. A nil registry
// snapshots to nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Sample, 0, len(names))
	for _, name := range names {
		switch {
		case r.counters[name] != nil:
			out = append(out, Sample{Name: name, Kind: "counter", Value: int64(r.counters[name].Value())})
		case r.gauges[name] != nil:
			out = append(out, Sample{Name: name, Kind: "gauge", Value: r.gauges[name].Value()})
		default:
			h := r.hists[name]
			h.mu.Lock()
			s := Sample{Name: name, Kind: "histogram", Value: int64(h.count), Sum: h.sum}
			for i, n := range h.buckets {
				if n > 0 {
					s.Buckets = append(s.Buckets, Bucket{Le: bucketLe(i), Count: n})
				}
			}
			h.mu.Unlock()
			out = append(out, s)
		}
	}
	return out
}
