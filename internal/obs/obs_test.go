package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// someEvents is a small unsorted event set exercising every field.
func someEvents() []Event {
	return []Event{
		{Cycle: 9, Track: "router(1,1)", Kind: KindDeliver, Value: 4},
		{Cycle: 2, Scope: ScopeKernel, Track: "kernel", Kind: KindFastForward, Value: 17},
		{Cycle: 2, Track: "src(0,0)", Kind: KindInject, Value: -3, Detail: "flow 2"},
		{Cycle: 2, Track: "src(0,0)", Kind: KindInject, Value: -3, Detail: "flow 1"},
		{Cycle: 2, Cell: 1, Track: "src(0,0)", Kind: KindInject},
		{Cycle: 0, Track: "mesh.flows", Kind: KindFlowSetup, Value: 1},
	}
}

func TestCollectorCanonicalOrder(t *testing.T) {
	c := NewCollector()
	for _, e := range someEvents() {
		c.Emit(e)
	}
	evs := c.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if less(evs[i], evs[i-1]) {
			t.Fatalf("events not in canonical order at %d: %+v > %+v", i, evs[i-1], evs[i])
		}
	}
	// Cell sorts first, then cycle.
	if evs[len(evs)-1].Cell != 1 {
		t.Fatalf("cell-1 event should sort last, got %+v", evs[len(evs)-1])
	}
	if evs[0] != (Event{Cycle: 0, Track: "mesh.flows", Kind: KindFlowSetup, Value: 1}) {
		t.Fatalf("unexpected first event %+v", evs[0])
	}
}

// TestCollectorDeterministicAcrossInterleavings is the exporter-side
// determinism property: the same event multiset emitted from concurrent
// goroutines exports the same bytes as a sequential emission.
func TestCollectorDeterministicAcrossInterleavings(t *testing.T) {
	seq := NewCollector()
	for _, e := range someEvents() {
		seq.Emit(e)
	}
	par := NewCollector()
	var wg sync.WaitGroup
	for _, e := range someEvents() {
		wg.Add(1)
		go func(e Event) {
			defer wg.Done()
			par.Emit(e)
		}(e)
	}
	wg.Wait()

	var a, b bytes.Buffer
	if err := WriteChrome(&a, seq.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, par.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export differs between emission interleavings")
	}
}

func TestWriteChromeParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, someEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	instants, metas := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "i":
			instants++
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if instants != 6 {
		t.Fatalf("got %d instant events, want 6", instants)
	}
	if metas == 0 {
		t.Fatal("no process/thread name metadata emitted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, someEvents()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := someEvents()
	SortEvents(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("garbage accepted as a binary trace")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, someEvents()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestCellTracer(t *testing.T) {
	c := NewCollector()
	CellTracer{T: c, Cell: 7}.Emit(Event{Cycle: 1, Track: "x", Kind: KindEval})
	evs := c.Events()
	if len(evs) != 1 || evs[0].Cell != 7 {
		t.Fatalf("cell not stamped: %+v", evs)
	}
}

func TestRegistrySnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("kernel.evals").Add(10)
	r.Counter("kernel.evals").Add(5)
	r.Gauge("kernel.parked").Set(-2)
	h := r.Histogram("alloc.path_len")
	h.Observe(0)
	h.Observe(3)
	h.Observe(300)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d samples, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Name < snap[i-1].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	if s := byName["kernel.evals"]; s.Kind != "counter" || s.Value != 15 {
		t.Fatalf("counter sample wrong: %+v", s)
	}
	if s := byName["kernel.parked"]; s.Kind != "gauge" || s.Value != -2 {
		t.Fatalf("gauge sample wrong: %+v", s)
	}
	s := byName["alloc.path_len"]
	if s.Kind != "histogram" || s.Value != 3 || s.Sum != 303 {
		t.Fatalf("histogram sample wrong: %+v", s)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("histogram buckets wrong: %+v", s.Buckets)
	}
	if s.Buckets[0].Le != 0 || s.Buckets[1].Le != 3 || s.Buckets[2].Le != 511 {
		t.Fatalf("bucket bounds wrong: %+v", s.Buckets)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry should snapshot to nil")
	}
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 {
		t.Fatal("nil instruments should read zero")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a name across kinds should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}
