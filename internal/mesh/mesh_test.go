package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

func newMesh(w, h int) *Mesh {
	return New(w, h, core.DefaultParams(), core.DefaultAssemblyOptions())
}

func TestMeshGeometry(t *testing.T) {
	m := newMesh(4, 3)
	if m.Nodes() != 12 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	if !m.InBounds(Coord{3, 2}) || m.InBounds(Coord{4, 0}) || m.InBounds(Coord{0, -1}) {
		t.Fatal("bounds wrong")
	}
	if m.At(Coord{0, 0}) == m.At(Coord{1, 0}) {
		t.Fatal("nodes alias")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At out of bounds should panic")
		}
	}()
	m.At(Coord{9, 9})
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newMesh(0, 3)
}

func TestNeighbourAndPortTowards(t *testing.T) {
	m := newMesh(3, 3)
	c := Coord{1, 1}
	dirs := map[core.Port]Coord{
		core.North: {1, 0}, core.South: {1, 2}, core.East: {2, 1}, core.West: {0, 1},
	}
	for p, want := range dirs {
		got, ok := m.Neighbour(c, p)
		if !ok || got != want {
			t.Errorf("Neighbour(%v, %v) = %v,%v", c, p, got, ok)
		}
		back, err := PortTowards(c, want)
		if err != nil || back != p {
			t.Errorf("PortTowards(%v, %v) = %v, %v", c, want, back, err)
		}
	}
	if _, ok := m.Neighbour(Coord{0, 0}, core.North); ok {
		t.Fatal("edge node has no north neighbour")
	}
	if _, ok := m.Neighbour(c, core.Tile); ok {
		t.Fatal("tile port has no neighbour")
	}
	if _, err := PortTowards(Coord{0, 0}, Coord{2, 2}); err == nil {
		t.Fatal("non-adjacent accepted")
	}
}

func TestXYPath(t *testing.T) {
	p := XYPath(Coord{0, 0}, Coord{2, 1})
	want := []Coord{{0, 0}, {1, 0}, {2, 0}, {2, 1}}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if got := XYPath(Coord{1, 1}, Coord{1, 1}); len(got) != 1 {
		t.Fatalf("self path = %v", got)
	}
}

func TestXYPathProperty(t *testing.T) {
	// Any XY path is connected, has Manhattan-distance+1 nodes, and stays
	// rectilinear.
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax % 8), int(ay % 8)}
		b := Coord{int(bx % 8), int(by % 8)}
		p := XYPath(a, b)
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		dist := abs(a.X-b.X) + abs(a.Y-b.Y)
		if len(p) != dist+1 {
			return false
		}
		for i := 1; i < len(p); i++ {
			if _, err := PortTowards(p[i-1], p[i]); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDataCrossesTheMesh(t *testing.T) {
	// Manually configure a 3-hop circuit (0,0)Tile -> East -> East ->
	// (2,0)Tile and stream words across it.
	m := newMesh(3, 1)
	p := m.P
	src, mid, dst := m.At(Coord{0, 0}), m.At(Coord{1, 0}), m.At(Coord{2, 0})
	if err := src.EstablishLocal(core.Circuit{
		In: core.LaneID{Port: core.Tile, Lane: 0}, Out: core.LaneID{Port: core.East, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := mid.EstablishLocal(core.Circuit{
		In: core.LaneID{Port: core.West, Lane: 0}, Out: core.LaneID{Port: core.East, Lane: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dst.EstablishLocal(core.Circuit{
		In: core.LaneID{Port: core.West, Lane: 1}, Out: core.LaneID{Port: core.Tile, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	_ = p
	const total = 40
	var got []core.Word
	n := 0
	m.World().Add(&sim.Func{OnEval: func() {
		if n < total && src.Tx[0].Ready() {
			if src.Tx[0].Push(core.DataWord(uint16(n * 5))) {
				n++
			}
		}
		if w, ok := dst.Rx[0].Pop(); ok {
			got = append(got, w)
		}
	}})
	if !m.World().RunUntil(func() bool { return len(got) == total }, 5000) {
		t.Fatalf("received %d/%d", len(got), total)
	}
	for i, w := range got {
		if w.Data != uint16(i*5) {
			t.Fatalf("word %d = %v", i, w)
		}
	}
	if dst.Rx[0].Dropped() != 0 {
		t.Fatal("drops across mesh")
	}
	if src.Tx[0].WindowViolations() != 0 {
		t.Fatal("window violations across mesh")
	}
}

func TestAckTravelsBackAcrossMesh(t *testing.T) {
	// With a slow consumer three hops away, flow control must throttle
	// the source with zero loss (the ack path crosses two links).
	m := newMesh(3, 1)
	src, mid, dst := m.At(Coord{0, 0}), m.At(Coord{1, 0}), m.At(Coord{2, 0})
	for _, c := range []struct {
		a    *core.Assembly
		circ core.Circuit
	}{
		{src, core.Circuit{In: core.LaneID{Port: core.Tile, Lane: 0}, Out: core.LaneID{Port: core.East, Lane: 2}}},
		{mid, core.Circuit{In: core.LaneID{Port: core.West, Lane: 2}, Out: core.LaneID{Port: core.East, Lane: 3}}},
		{dst, core.Circuit{In: core.LaneID{Port: core.West, Lane: 3}, Out: core.LaneID{Port: core.Tile, Lane: 2}}},
	} {
		if err := c.a.EstablishLocal(c.circ); err != nil {
			t.Fatal(err)
		}
	}
	sent, consumed, cycle := 0, 0, 0
	m.World().Add(&sim.Func{OnEval: func() {
		if src.Tx[0].Ready() {
			if src.Tx[0].Push(core.DataWord(uint16(sent))) {
				sent++
			}
		}
		if cycle%31 == 0 {
			if _, ok := dst.Rx[2].Pop(); ok {
				consumed++
			}
		}
		cycle++
	}})
	m.Run(4000)
	if dst.Rx[2].Dropped() != 0 {
		t.Fatalf("flow control failed across mesh: %d drops", dst.Rx[2].Dropped())
	}
	if consumed < 50 {
		t.Fatalf("consumer starved: %d", consumed)
	}
	if src.Tx[0].Stalled() == 0 {
		t.Fatal("source never throttled")
	}
}

func TestCoordString(t *testing.T) {
	if (Coord{2, 3}).String() != "(2,3)" {
		t.Fatal("coord rendering")
	}
}
