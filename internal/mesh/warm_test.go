package mesh

import (
	"testing"

	"repro/internal/sim"
)

// memHook is a single-slot in-memory WarmHook for tests: it keeps every
// stored checkpoint and serves the newest one not past maxCycle.
type memHook struct {
	cycles []uint64
	blobs  [][]byte
	hits   int
}

func (h *memHook) hook() *WarmHook {
	return &WarmHook{
		Lookup: func(maxCycle uint64) ([]byte, uint64, bool) {
			for i := len(h.blobs) - 1; i >= 0; i-- {
				if h.cycles[i] <= maxCycle {
					h.hits++
					return h.blobs[i], h.cycles[i], true
				}
			}
			return nil, 0, false
		},
		Store: func(cycle uint64, data []byte) {
			h.cycles = append(h.cycles, cycle)
			h.blobs = append(h.blobs, append([]byte(nil), data...))
		},
	}
}

// last returns the most recently stored checkpoint blob.
func (h *memHook) last() []byte {
	if len(h.blobs) == 0 {
		return nil
	}
	return h.blobs[len(h.blobs)-1]
}

// TestWarmCheckpointDeterminism is the warm-start acceptance check on
// the circuit-mesh pattern path: under every kernel, a run forked from
// a mid-run checkpoint must equal a straight run — compared through the
// result fingerprint AND through the end-of-run checkpoint envelope,
// which serializes every simulated bit of the world.
func TestWarmCheckpointDeterminism(t *testing.T) {
	for _, k := range []sim.Kernel{sim.KernelNaive, sim.KernelGated, sim.KernelEvent, sim.KernelActive} {
		cfg := patternCfg(k)
		cfg.Cycles = 3000

		straightHook := &memHook{}
		cfgStraight := cfg
		cfgStraight.Warm = straightHook.hook()
		straight, err := RunPattern(cfgStraight)
		if err != nil {
			t.Fatalf("kernel %v: straight: %v", k, err)
		}

		// Prefix run to 1200 cycles stores the checkpoint the warm run
		// forks from.
		warmHook := &memHook{}
		cfgShort := cfg
		cfgShort.Cycles = 1200
		cfgShort.Warm = warmHook.hook()
		if _, err := RunPattern(cfgShort); err != nil {
			t.Fatalf("kernel %v: prefix: %v", k, err)
		}
		if len(warmHook.blobs) != 1 {
			t.Fatalf("kernel %v: prefix stored %d checkpoints, want 1", k, len(warmHook.blobs))
		}

		cfgWarm := cfg
		cfgWarm.Warm = warmHook.hook()
		warm, err := RunPattern(cfgWarm)
		if err != nil {
			t.Fatalf("kernel %v: warm: %v", k, err)
		}
		if warmHook.hits == 0 {
			t.Fatalf("kernel %v: warm run never consulted the checkpoint", k)
		}

		if got, want := fingerprint(t, warm), fingerprint(t, straight); got != want {
			t.Fatalf("kernel %v: warm fingerprint differs\nwarm:     %s\nstraight: %s", k, got, want)
		}
		// The end-of-run envelopes cover the full world state: byte
		// equality means the forked world is exactly the straight one.
		if string(warmHook.last()) != string(straightHook.last()) {
			t.Fatalf("kernel %v: end-of-run checkpoints differ between warm fork and straight run", k)
		}
	}
}

// TestWarmCheckpointDeterminismWithWarmup repeats the fork check with
// warm-up accounting and latency retention on — the configuration that
// exercises the envelope's timed-recorder and retained-series paths.
func TestWarmCheckpointDeterminismWithWarmup(t *testing.T) {
	cfg := patternCfg(sim.KernelEvent)
	cfg.Cycles = 3000
	cfg.WarmupAuto = true
	cfg.RetainLatency = true

	straight, err := RunPattern(cfg)
	if err != nil {
		t.Fatalf("straight: %v", err)
	}

	h := &memHook{}
	cfgShort := cfg
	cfgShort.Cycles = 1000
	cfgShort.Warm = h.hook()
	if _, err := RunPattern(cfgShort); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	cfgWarm := cfg
	cfgWarm.Warm = h.hook()
	warm, err := RunPattern(cfgWarm)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if h.hits == 0 {
		t.Fatal("warm run never consulted the checkpoint")
	}
	if got, want := fingerprint(t, warm), fingerprint(t, straight); got != want {
		t.Fatalf("warm fingerprint differs\nwarm:     %s\nstraight: %s", got, want)
	}
	if warm.WarmupCycles != straight.WarmupCycles {
		t.Fatalf("warm-up truncation differs: warm %d, straight %d",
			warm.WarmupCycles, straight.WarmupCycles)
	}
	if warm.Latency.N() != straight.Latency.N() {
		t.Fatalf("retained sample count differs: warm %d, straight %d",
			warm.Latency.N(), straight.Latency.N())
	}
}

// TestWarmCheckpointFallback covers the degraded paths: a hook serving
// garbage, a mismatched envelope, and a corrupted world blob must all
// fall back to full simulation with output identical to no hook at all.
func TestWarmCheckpointFallback(t *testing.T) {
	cfg := patternCfg(sim.KernelEvent)
	cfg.Cycles = 2000
	straight, err := RunPattern(cfg)
	if err != nil {
		t.Fatalf("straight: %v", err)
	}
	want := fingerprint(t, straight)

	// A valid checkpoint to corrupt.
	good := &memHook{}
	cfgShort := cfg
	cfgShort.Cycles = 800
	cfgShort.Warm = good.hook()
	if _, err := RunPattern(cfgShort); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	valid := good.last()

	// A framing-valid checkpoint from a different world shape: the
	// checksum and flags pass, World.Restore starts and fails on the
	// component count — the tainted path that forces a rebuild.
	foreign := &memHook{}
	cfgForeign := cfgShort
	cfgForeign.W = 5
	cfgForeign.Warm = foreign.hook()
	if _, err := RunPattern(cfgForeign); err != nil {
		t.Fatalf("foreign prefix: %v", err)
	}

	cases := []struct {
		name string
		data []byte
		cyc  uint64
	}{
		{"garbage", []byte("definitely not a checkpoint"), 800},
		// A bit flip anywhere in the envelope fails the checksum before
		// any mutation.
		{"corrupt-world", corruptAt(valid, len(valid)/2), 800},
		// Truncation inside the envelope header fails before mutation.
		{"truncated", valid[:8], 800},
		{"wrong-world-shape", foreign.last(), 800},
	}
	for _, tc := range cases {
		served := false
		cfgBad := cfg
		cfgBad.Warm = &WarmHook{
			Lookup: func(maxCycle uint64) ([]byte, uint64, bool) {
				served = true
				return tc.data, tc.cyc, true
			},
		}
		res, err := RunPattern(cfgBad)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !served {
			t.Fatalf("%s: hook never consulted", tc.name)
		}
		if got := fingerprint(t, res); got != want {
			t.Fatalf("%s: fallback result differs\ngot:  %s\nwant: %s", tc.name, got, want)
		}
	}

	// Envelope mismatch: a checkpoint stored without latency retention
	// is rejected (pre-mutation) by a run that retains.
	cfgRetain := cfg
	cfgRetain.RetainLatency = true
	straightRetain, err := RunPattern(cfgRetain)
	if err != nil {
		t.Fatalf("straight retain: %v", err)
	}
	cfgMismatch := cfgRetain
	cfgMismatch.Warm = &WarmHook{
		Lookup: func(maxCycle uint64) ([]byte, uint64, bool) {
			return valid, 800, true
		},
	}
	res, err := RunPattern(cfgMismatch)
	if err != nil {
		t.Fatalf("mismatch: %v", err)
	}
	if got, want := fingerprint(t, res), fingerprint(t, straightRetain); got != want {
		t.Fatalf("mismatched-envelope fallback differs\ngot:  %s\nwant: %s", got, want)
	}
}

// corruptAt returns a copy of b with the byte at i inverted.
func corruptAt(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}
