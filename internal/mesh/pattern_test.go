package mesh

import (
	"encoding/json"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

func patternCfg(k sim.Kernel) PatternConfig {
	return PatternConfig{
		W: 4, H: 4, Cycles: 3000, FreqMHz: 25,
		Lib:       stdcell.Default013(),
		Spatial:   pattern.Spatial{Kind: pattern.Neighbour},
		Injection: pattern.Injection{Proc: pattern.Poisson, Rate: 0.02},
		FlipProb:  0.5, Seed: 11, Kernel: k,
	}
}

// fingerprint renders the parts of a result that must be byte-identical
// across kernels. stats.Series has unexported fields, so the latency
// distribution is compared through its summary.
func fingerprint(t *testing.T, r *PatternResult) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Req, Est  int
		Sent, Del uint64
		LatN      int
		LatMean   float64
		LatMin    float64
		LatMax    float64
		Power     float64
		Util      float64
		Flows     []PatternFlow
	}{
		r.FlowsRequested, r.FlowsEstablished, r.WordsSent, r.WordsDelivered,
		r.Latency.N(), r.Latency.Mean(), r.Latency.Min(), r.Latency.Max(),
		r.Power.TotalUW(), r.LaneUtilization, r.Flows,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunPatternKernelEquivalence(t *testing.T) {
	for _, sp := range []pattern.Spatial{
		{Kind: pattern.Neighbour},
		{Kind: pattern.Transpose},
		{Kind: pattern.Hotspot, Alpha: 0.5},
	} {
		cfg := patternCfg(sim.KernelNaive)
		cfg.Spatial = sp
		naive, err := RunPattern(cfg)
		if err != nil {
			t.Fatalf("%v naive: %v", sp, err)
		}
		cfg.Kernel = sim.KernelGated
		gated, err := RunPattern(cfg)
		if err != nil {
			t.Fatalf("%v gated: %v", sp, err)
		}
		cfg.Kernel = sim.KernelEvent
		event, err := RunPattern(cfg)
		if err != nil {
			t.Fatalf("%v event: %v", sp, err)
		}
		cfg.Kernel = sim.KernelActive
		cfg.SimWorkers = 1
		active1, err := RunPattern(cfg)
		if err != nil {
			t.Fatalf("%v active: %v", sp, err)
		}
		cfg.SimWorkers = 8
		active8, err := RunPattern(cfg)
		if err != nil {
			t.Fatalf("%v active/8: %v", sp, err)
		}
		if naive.WordsDelivered == 0 {
			t.Fatalf("%v: nothing delivered", sp)
		}
		fn, fg, fe := fingerprint(t, naive), fingerprint(t, gated), fingerprint(t, event)
		fa1, fa8 := fingerprint(t, active1), fingerprint(t, active8)
		if fn != fg {
			t.Errorf("%v: naive vs gated differ\n%s\n%s", sp, fn, fg)
		}
		if fn != fe {
			t.Errorf("%v: naive vs event differ\n%s\n%s", sp, fn, fe)
		}
		if fn != fa1 {
			t.Errorf("%v: naive vs active differ\n%s\n%s", sp, fn, fa1)
		}
		if fa1 != fa8 {
			t.Errorf("%v: active workers 1 vs 8 differ\n%s\n%s", sp, fa1, fa8)
		}
	}
}

func TestRunPatternDeterministicAcrossRuns(t *testing.T) {
	cfg := patternCfg(sim.KernelEvent)
	a, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, a) != fingerprint(t, b) {
		t.Error("same config, different results")
	}
	cfg.Seed = 12
	c, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, a) == fingerprint(t, c) {
		t.Error("seed change did not change the run")
	}
}

func TestRunPatternHotspotBlocksFlows(t *testing.T) {
	// All-to-hotspot traffic cannot be admitted on a circuit fabric:
	// the hotspot tile has LanesPerPort output lanes, so only a handful
	// of flows establish. That is the expected admission-time answer.
	cfg := patternCfg(sim.KernelEvent)
	cfg.Spatial = pattern.Spatial{Kind: pattern.Hotspot, Alpha: 1}
	r, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlowsEstablished >= r.FlowsRequested {
		t.Errorf("hotspot established %d of %d flows; expected blocking",
			r.FlowsEstablished, r.FlowsRequested)
	}
	if r.FlowsEstablished == 0 {
		t.Error("no flow established at all")
	}
}

func TestRunPatternNeighbourEstablishesAll(t *testing.T) {
	// One-hop neighbour flows never contend for more lanes than a port
	// has; every flow must establish.
	cfg := patternCfg(sim.KernelEvent)
	cfg.Spatial = pattern.Spatial{Kind: pattern.Neighbour}
	r, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlowsEstablished != r.FlowsRequested {
		t.Errorf("neighbour established %d of %d flows", r.FlowsEstablished, r.FlowsRequested)
	}
	if r.Latency.N() == 0 {
		t.Error("no latency samples")
	}
}

func TestRunPatternSparseFastForwards(t *testing.T) {
	// Finite sparse flows retire; the event kernel must fast-forward
	// the drained tail — the bulk of the run.
	cfg := patternCfg(sim.KernelEvent)
	cfg.Injection = pattern.Injection{Proc: pattern.Bernoulli, Rate: 0.01}
	cfg.WordsPerFlow = 5
	cfg.Cycles = 100000
	var ffCycles uint64
	cfg.Observe = func(w *sim.World) { _, ffCycles = w.FastForwards() }
	r, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(16 * 5); r.WordsSent != want {
		t.Errorf("sent %d words, want %d", r.WordsSent, want)
	}
	if r.WordsDelivered != r.WordsSent {
		t.Errorf("delivered %d of %d", r.WordsDelivered, r.WordsSent)
	}
	if float64(ffCycles) < 0.9*float64(cfg.Cycles) {
		t.Errorf("fast-forwarded only %d of %d cycles", ffCycles, cfg.Cycles)
	}
}

// TestRunPatternWarmupExplicit pins the explicit measurement window:
// warm-up truncation drops the startup observations from the aggregate
// counts and latency distribution, reports the window, and stays
// byte-identical across kernels.
func TestRunPatternWarmupExplicit(t *testing.T) {
	full, err := RunPattern(patternCfg(sim.KernelEvent))
	if err != nil {
		t.Fatal(err)
	}
	cfg := patternCfg(sim.KernelEvent)
	cfg.WarmupCycles = 1000
	warm, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmupCycles != 1000 || warm.MeasuredCycles != 2000 {
		t.Fatalf("window = warmup %d / measured %d, want 1000/2000",
			warm.WarmupCycles, warm.MeasuredCycles)
	}
	if full.WarmupCycles != 0 || full.MeasuredCycles != 3000 {
		t.Fatalf("full-run window = %d/%d, want 0/3000", full.WarmupCycles, full.MeasuredCycles)
	}
	if warm.WordsSent >= full.WordsSent || warm.WordsDelivered >= full.WordsDelivered {
		t.Fatalf("truncated counts (%d/%d) should be below full-run (%d/%d)",
			warm.WordsSent, warm.WordsDelivered, full.WordsSent, full.WordsDelivered)
	}
	if warm.Latency.N() >= full.Latency.N() || warm.Latency.N() == 0 {
		t.Fatalf("truncated latency N = %d, full = %d", warm.Latency.N(), full.Latency.N())
	}
	// Per-flow counts stay full-run: their sum must match the
	// untruncated aggregate.
	var flowSent uint64
	for _, f := range warm.Flows {
		flowSent += f.WordsSent
	}
	if flowSent != full.WordsSent {
		t.Fatalf("per-flow sent sum %d, want full-run %d", flowSent, full.WordsSent)
	}

	// Kernel equivalence holds under truncation too.
	for _, k := range []sim.Kernel{sim.KernelNaive, sim.KernelGated} {
		cfg := patternCfg(k)
		cfg.WarmupCycles = 1000
		other, err := RunPattern(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if fingerprint(t, other) != fingerprint(t, warm) {
			t.Fatalf("kernel %v diverges under warm-up truncation", k)
		}
		if other.WarmupCycles != warm.WarmupCycles {
			t.Fatalf("kernel %v warm-up %d, want %d", k, other.WarmupCycles, warm.WarmupCycles)
		}
	}
}

// TestRunPatternWarmupAuto exercises MSER steady-state detection: the
// detected window is deterministic, within the run, and identical
// across kernels.
func TestRunPatternWarmupAuto(t *testing.T) {
	cfg := patternCfg(sim.KernelEvent)
	cfg.WarmupAuto = true
	first, err := RunPattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.WarmupCycles >= uint64(cfg.Cycles) {
		t.Fatalf("auto warm-up %d exceeds the run", first.WarmupCycles)
	}
	if first.MeasuredCycles != uint64(cfg.Cycles)-first.WarmupCycles {
		t.Fatalf("measured %d, want cycles-warmup", first.MeasuredCycles)
	}
	if first.Latency.N() == 0 {
		t.Fatal("auto warm-up truncated every observation")
	}
	for _, k := range []sim.Kernel{sim.KernelEvent, sim.KernelNaive, sim.KernelGated} {
		cfg := patternCfg(k)
		cfg.WarmupAuto = true
		again, err := RunPattern(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if again.WarmupCycles != first.WarmupCycles || fingerprint(t, again) != fingerprint(t, first) {
			t.Fatalf("auto warm-up not deterministic under kernel %v (%d vs %d)",
				k, again.WarmupCycles, first.WarmupCycles)
		}
	}
}

// TestPatternConfigWarmupValidation pins the config errors.
func TestPatternConfigWarmupValidation(t *testing.T) {
	cfg := patternCfg(sim.KernelEvent)
	cfg.WarmupCycles = cfg.Cycles
	if _, err := RunPattern(cfg); err == nil {
		t.Fatal("warm-up >= cycles should be rejected")
	}
	cfg = patternCfg(sim.KernelEvent)
	cfg.WarmupCycles = -1
	if _, err := RunPattern(cfg); err == nil {
		t.Fatal("negative warm-up should be rejected")
	}
	cfg = patternCfg(sim.KernelEvent)
	cfg.WarmupCycles, cfg.WarmupAuto = 10, true
	if _, err := RunPattern(cfg); err == nil {
		t.Fatal("explicit + auto warm-up should be rejected")
	}
}
