package mesh

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestSlowTileClockDomain models the paper's per-tile clock domains
// (Section 1, advantage h): a consuming tile running at an eighth of the
// network clock, attached via sim.Divided. The window-counter flow
// control absorbs the rate mismatch — the source throttles to the slow
// tile's rate and nothing is ever lost.
func TestSlowTileClockDomain(t *testing.T) {
	m := newMesh(2, 1)
	src, dst := m.At(Coord{0, 0}), m.At(Coord{1, 0})
	if err := src.EstablishLocal(core.Circuit{
		In: core.LaneID{Port: core.Tile, Lane: 0}, Out: core.LaneID{Port: core.East, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dst.EstablishLocal(core.Circuit{
		In: core.LaneID{Port: core.West, Lane: 0}, Out: core.LaneID{Port: core.Tile, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	// Fast producer tile at the network clock.
	sent := 0
	m.World().Add(&sim.Func{OnEval: func() {
		if src.Tx[0].Ready() {
			if src.Tx[0].Push(core.DataWord(uint16(sent))) {
				sent++
			}
		}
	}})
	// Slow consumer tile: one pop opportunity every 8 network cycles
	// (slower than the lane's 1-word-per-5-cycles line rate, so flow control
	// must throttle the source).
	consumed := 0
	expected := uint16(0)
	m.World().Add(sim.NewDivided(&sim.Func{OnEval: func() {
		if w, ok := dst.Rx[0].Pop(); ok {
			if w.Data != expected {
				t.Errorf("out of order at slow tile: %#x want %#x", w.Data, expected)
			}
			expected++
			consumed++
		}
	}}, 8))
	const cycles = 4000
	m.Run(cycles)
	if dst.Rx[0].Dropped() != 0 {
		t.Fatalf("cross-domain transfer dropped %d words", dst.Rx[0].Dropped())
	}
	// Throughput is set by the slow domain: ~1 word per 8 cycles, minus
	// flow-control round trips (window refills cross two routers).
	if consumed < cycles/10 || consumed > cycles/8+2 {
		t.Fatalf("consumed %d words in %d cycles, want ~%d (slow-domain bound)",
			consumed, cycles, cycles/8)
	}
	if src.Tx[0].Stalled() == 0 {
		t.Fatal("fast source never throttled to the slow tile")
	}
	if src.Tx[0].WindowViolations() != 0 {
		t.Fatal("window protocol violated across clock domains")
	}
}
