// Package mesh assembles circuit-switched routers into the paper's regular
// two-dimensional mesh topology (Section 1.1): every router is connected to
// its four neighbours by bidirectional point-to-point links (lane bundles in
// each direction) and to one processing tile through the tile interface.
package mesh

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Coord addresses a node in the mesh. X grows eastward, Y grows southward.
type Coord struct {
	X, Y int
}

// String renders the coordinate.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Mesh is a W×H grid of circuit-switched router assemblies with all
// neighbour links wired.
type Mesh struct {
	// W and H are the grid dimensions.
	W, H int
	// P are the router parameters shared by all nodes.
	P core.Params

	nodes []*core.Assembly
	world *sim.World
}

// New builds a fully wired W×H mesh with the given per-node assembly
// options. World options select the simulation kernel: by default the
// activity-tracked gated kernel skips unconfigured routers, which is what
// makes large sparsely loaded meshes cheap to simulate; pass
// sim.WithKernel(sim.KernelNaive) to force the evaluate-everything kernel.
func New(w, h int, p core.Params, opt core.AssemblyOptions, wopts ...sim.WorldOption) *Mesh {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("mesh: invalid size %dx%d", w, h))
	}
	m := &Mesh{W: w, H: h, P: p, world: sim.NewWorld(wopts...)}
	m.nodes = make([]*core.Assembly, w*h)
	for i := range m.nodes {
		m.nodes[i] = core.NewAssembly(p, opt)
		m.world.Add(m.nodes[i])
	}
	// Wire neighbour links: East↔West and South↔North, lane by lane, data
	// forward and acknowledgement reverse.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				m.wire(Coord{x, y}, core.East, Coord{x + 1, y}, core.West)
			}
			if y+1 < h {
				m.wire(Coord{x, y}, core.South, Coord{x, y + 1}, core.North)
			}
		}
	}
	// No DependsOn declarations for the assemblies: an assembly with any
	// configured lane or enabled converter must watch its neighbour
	// wires every cycle (so it stays active, exactly like the gated
	// kernel), while a dormant assembly certifies input-deafness through
	// sim.Sleeper and parks with no upstream set at all — committing
	// neighbours stream past it without waking it.
	return m
}

// wire connects a's aPort output lanes to b's bPort input lanes and vice
// versa, including the reverse acknowledgement wires.
func (m *Mesh) wire(ac Coord, aPort core.Port, bc Coord, bPort core.Port) {
	a, b := m.At(ac), m.At(bc)
	for l := 0; l < m.P.LanesPerPort; l++ {
		ga := m.P.Global(core.LaneID{Port: aPort, Lane: l})
		gb := m.P.Global(core.LaneID{Port: bPort, Lane: l})
		// a -> b data; b -> a acknowledgement for that circuit direction.
		b.R.ConnectIn(gb, &a.R.Out[ga])
		a.R.ConnectAckIn(ga, &b.R.AckOut[gb])
		// b -> a data; a -> b acknowledgement.
		a.R.ConnectIn(ga, &b.R.Out[gb])
		b.R.ConnectAckIn(gb, &a.R.AckOut[ga])
	}
}

// At returns the assembly at the coordinate. It panics if out of range.
func (m *Mesh) At(c Coord) *core.Assembly {
	if !m.InBounds(c) {
		panic(fmt.Sprintf("mesh: %v outside %dx%d", c, m.W, m.H))
	}
	return m.nodes[c.Y*m.W+c.X]
}

// InBounds reports whether the coordinate lies in the grid.
func (m *Mesh) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// Nodes returns the number of nodes.
func (m *Mesh) Nodes() int { return m.W * m.H }

// World returns the simulation world so callers can add stimulus
// components.
func (m *Mesh) World() *sim.World { return m.world }

// NodeActivity returns the kernel's Eval/Commit counts for the assembly
// at the coordinate: pairs executed and pairs skipped (including
// fast-forwarded windows). Together they are the per-router activity
// factor behind the per-component power attribution — an idle router
// shows ~100% skips, a streaming router ~100% evals. Under the naive
// kernel skips are always zero.
func (m *Mesh) NodeActivity(c Coord) (evals, skips uint64) {
	if !m.InBounds(c) {
		panic(fmt.Sprintf("mesh: %v outside %dx%d", c, m.W, m.H))
	}
	// Assemblies are the first W*H components registered with the world,
	// in row-major order.
	return m.world.ComponentActivity(c.Y*m.W + c.X)
}

// Step advances the whole mesh by one clock cycle.
func (m *Mesh) Step() { m.world.Step() }

// Run advances the mesh by n cycles.
func (m *Mesh) Run(n int) { m.world.Run(n) }

// Neighbour returns the coordinate adjacent to c through the given port
// and whether it exists. The tile port has no neighbour.
func (m *Mesh) Neighbour(c Coord, p core.Port) (Coord, bool) {
	var n Coord
	switch p {
	case core.North:
		n = Coord{c.X, c.Y - 1}
	case core.South:
		n = Coord{c.X, c.Y + 1}
	case core.East:
		n = Coord{c.X + 1, c.Y}
	case core.West:
		n = Coord{c.X - 1, c.Y}
	default:
		return Coord{}, false
	}
	return n, m.InBounds(n)
}

// PortTowards returns the port of a that faces b, which must be an
// adjacent coordinate.
func PortTowards(a, b Coord) (core.Port, error) {
	dx, dy := b.X-a.X, b.Y-a.Y
	switch {
	case dx == 1 && dy == 0:
		return core.East, nil
	case dx == -1 && dy == 0:
		return core.West, nil
	case dx == 0 && dy == 1:
		return core.South, nil
	case dx == 0 && dy == -1:
		return core.North, nil
	default:
		return 0, fmt.Errorf("mesh: %v and %v are not adjacent", a, b)
	}
}

// XYPath returns the dimension-ordered (X first, then Y) route between two
// coordinates, inclusive of both endpoints.
func XYPath(from, to Coord) []Coord {
	path := []Coord{from}
	c := from
	for c.X != to.X {
		if to.X > c.X {
			c.X++
		} else {
			c.X--
		}
		path = append(path, c)
	}
	for c.Y != to.Y {
		if to.Y > c.Y {
			c.Y++
		} else {
			c.Y--
		}
		path = append(path, c)
	}
	return path
}
