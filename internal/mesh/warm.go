package mesh

import (
	"fmt"
	"hash/crc32"

	"repro/internal/sim"
)

// This file is the mesh half of the warm-start checkpoint layer: the
// Snapshotter implementations for the pattern harness components
// (patternSource, patternSink) and the run-level envelope that bundles
// the world snapshot with the shared accumulation state (the latency
// series and, under warm-up accounting, the timed recorder) that lives
// outside any single component.
//
// Exactness contract: a checkpoint taken at cycle C and restored into a
// freshly established world of the same configuration prefix leaves
// every simulated bit identical to a cold run paused at C, so
// continuing to cycle N produces results byte-identical to a cold run
// of N cycles. Any violation of the contract is detected structurally
// (checksum, magic, flag and length checks) and falls back to full
// simulation.

// warmMagic guards the checkpoint envelope ("WARMCHK1").
const warmMagic uint64 = 0x5741524D43484B31

// Snapshot implements sim.Snapshotter for the flow head: the embedded
// injection source, the data-word generator's RNG registers, the
// in-flight injection stamps and the warm-up injection record.
func (s *patternSource) Snapshot(buf []byte) []byte {
	buf = s.Source.Snapshot(buf)
	rng, prev := s.gen.State()
	buf = sim.AppendU64(buf, rng)
	buf = sim.AppendU64(buf, prev)
	buf = sim.AppendU64(buf, uint64(len(s.stamps.q)))
	for _, c := range s.stamps.q {
		buf = sim.AppendU64(buf, c)
	}
	buf = sim.AppendU64(buf, uint64(len(s.sent)))
	for _, c := range s.sent {
		buf = sim.AppendU64(buf, c)
	}
	return buf
}

// Restore implements sim.Snapshotter.
func (s *patternSource) Restore(data []byte) ([]byte, error) {
	data, err := s.Source.Restore(data)
	if err != nil {
		return nil, err
	}
	var rng, prev uint64
	if rng, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if prev, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	s.gen.SetState(rng, prev)
	var n uint64
	if n, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	s.stamps.q = s.stamps.q[:0]
	for i := uint64(0); i < n; i++ {
		var c uint64
		if c, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		s.stamps.q = append(s.stamps.q, c)
	}
	if n, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	s.sent = s.sent[:0]
	for i := uint64(0); i < n; i++ {
		var c uint64
		if c, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		s.sent = append(s.sent, c)
	}
	return data, nil
}

// Snapshot implements sim.Snapshotter for the sink. The shared latency
// series and timed recorder are run-level state serialized once in the
// checkpoint envelope, not here; the in-flight stamps queue belongs to
// the source. Only the sink's private registers remain.
func (d *patternSink) Snapshot(buf []byte) []byte {
	buf = sim.AppendU64(buf, d.cycle)
	buf = sim.AppendU64(buf, d.popped)
	buf = sim.AppendF64(buf, d.pendingLat)
	buf = sim.AppendBool(buf, d.hasPending)
	return buf
}

// Restore implements sim.Snapshotter.
func (d *patternSink) Restore(data []byte) ([]byte, error) {
	var err error
	if d.cycle, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if d.popped, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if d.pendingLat, data, err = sim.ReadF64(data); err != nil {
		return nil, err
	}
	if d.hasPending, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	return data, nil
}

// runWarm advances the simulation to cfg.Cycles, using the Warm hook's
// checkpoint exchange when configured. It returns false only when a
// checkpoint restore failed after mutating the world — the caller must
// then rebuild the simulation and run cold. Every other failure mode
// (no hook, lookup miss, malformed or mismatched envelope detected
// before mutation, snapshot refusal at store time) degrades silently to
// the full run.
func (ps *patternSim) runWarm() bool {
	h := ps.cfg.Warm
	cycles := uint64(ps.cfg.Cycles)
	if h == nil || h.Lookup == nil {
		ps.m.Run(ps.cfg.Cycles)
		ps.storeCheckpoint()
		return true
	}
	if data, cyc, ok := h.Lookup(cycles); ok && cyc <= cycles {
		tainted, err := ps.restoreCheckpoint(data)
		if err == nil {
			if w := ps.m.World().Cycle(); w <= cycles {
				ps.m.Run(int(cycles - w))
				ps.storeCheckpoint()
				return true
			}
			// The envelope's embedded cycle disagrees with Lookup's:
			// the world is already mutated, rebuild.
			return false
		}
		if tainted {
			return false
		}
	}
	ps.m.Run(ps.cfg.Cycles)
	ps.storeCheckpoint()
	return true
}

// storeCheckpoint offers the end-of-run state to the Warm hook. A
// component that opts out of snapshotting makes World.Snapshot fail;
// the checkpoint is simply not stored.
func (ps *patternSim) storeCheckpoint() {
	h := ps.cfg.Warm
	if h == nil || h.Store == nil {
		return
	}
	world, err := ps.m.World().Snapshot()
	if err != nil {
		return
	}
	payload := sim.AppendU64(nil, warmMagic)
	payload = sim.AppendBool(payload, ps.cfg.RetainLatency)
	payload = sim.AppendBool(payload, ps.latRec != nil)
	payload = sim.AppendBytes(payload, world)
	payload = ps.res.Latency.Snapshot(payload)
	if ps.latRec != nil {
		payload = ps.latRec.Snapshot(payload)
	}
	// The leading checksum lets restoreCheckpoint reject any corruption
	// before touching the world — framing-valid bit flips included.
	buf := sim.AppendU64(nil, uint64(crc32.ChecksumIEEE(payload)))
	h.Store(ps.m.World().Cycle(), append(buf, payload...))
}

// restoreCheckpoint applies a stored envelope to the freshly
// established simulation. All structural checks that can fail run
// before the first mutation, so an early error leaves the world
// pristine (tainted=false) and the caller can still run cold in place.
func (ps *patternSim) restoreCheckpoint(data []byte) (tainted bool, err error) {
	crc, data, err := sim.ReadU64(data)
	if err != nil {
		return false, err
	}
	if got := uint64(crc32.ChecksumIEEE(data)); got != crc {
		return false, fmt.Errorf("mesh: checkpoint checksum %#x, want %#x", got, crc)
	}
	magic, data, err := sim.ReadU64(data)
	if err != nil {
		return false, err
	}
	if magic != warmMagic {
		return false, fmt.Errorf("mesh: bad checkpoint magic %#x", magic)
	}
	var retain, hasRec bool
	if retain, data, err = sim.ReadBool(data); err != nil {
		return false, err
	}
	if retain != ps.cfg.RetainLatency {
		return false, fmt.Errorf("mesh: checkpoint retention %v, run wants %v", retain, ps.cfg.RetainLatency)
	}
	if hasRec, data, err = sim.ReadBool(data); err != nil {
		return false, err
	}
	if hasRec != (ps.latRec != nil) {
		return false, fmt.Errorf("mesh: checkpoint warm-up accounting %v, run wants %v", hasRec, ps.latRec != nil)
	}
	var world []byte
	if world, data, err = sim.ReadBytes(data); err != nil {
		return false, err
	}
	if err = ps.m.World().Restore(world); err != nil {
		return true, err
	}
	if data, err = ps.res.Latency.Restore(data); err != nil {
		return true, err
	}
	if ps.latRec != nil {
		if data, err = ps.latRec.Restore(data); err != nil {
			return true, err
		}
	}
	if len(data) != 0 {
		return true, fmt.Errorf("mesh: %d trailing checkpoint bytes", len(data))
	}
	return false, nil
}

var _ sim.Snapshotter = (*patternSource)(nil)
var _ sim.Snapshotter = (*patternSink)(nil)
