package mesh

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

func TestPowerDomainAggregation(t *testing.T) {
	lib := stdcell.Default013()
	m := newMesh(2, 2)
	dom := m.BindMeters(lib, 25, false)
	m.Run(100)
	total := dom.Report("idle mesh")
	one := dom.Node(Coord{0, 0}).Report("node")
	// Four identical idle nodes: total is 4x one node.
	if diff := total.TotalUW() - 4*one.TotalUW(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("aggregate %.3f != 4 x %.3f", total.TotalUW(), one.TotalUW())
	}
	per := dom.PerNode("n")
	if len(per) != 4 {
		t.Fatalf("per-node reports = %d", len(per))
	}
}

func TestPowerDomainGatedIdleCheaper(t *testing.T) {
	lib := stdcell.Default013()
	run := func(gated bool) float64 {
		m := newMesh(2, 2)
		dom := m.BindMeters(lib, 25, gated)
		m.Run(200)
		return dom.Report("x").DynamicUW()
	}
	if g, u := run(true), run(false); g >= u/3 {
		t.Fatalf("gated idle mesh %.1f uW vs ungated %.1f uW: gating too weak", g, u)
	}
}

func TestPowerDomainLoadedNodeStandsOut(t *testing.T) {
	lib := stdcell.Default013()
	m := newMesh(2, 1)
	dom := m.BindMeters(lib, 25, false)
	src, dst := m.At(Coord{0, 0}), m.At(Coord{1, 0})
	if err := src.EstablishLocal(core.Circuit{
		In: core.LaneID{Port: core.Tile, Lane: 0}, Out: core.LaneID{Port: core.East, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dst.EstablishLocal(core.Circuit{
		In: core.LaneID{Port: core.West, Lane: 0}, Out: core.LaneID{Port: core.Tile, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	n := uint16(0)
	m.World().Add(&sim.Func{OnEval: func() {
		if src.Tx[0].Ready() {
			src.Tx[0].Push(core.DataWord(n * 0x5555))
			n++
		}
		dst.Rx[0].Pop()
	}})
	m.Run(1000)
	a := dom.Node(Coord{0, 0}).Report("src")
	b := dom.Node(Coord{1, 0}).Report("dst")
	if a.SwitchingUW <= 0 || b.SwitchingUW <= 0 {
		t.Fatal("loaded nodes show no switching activity")
	}
}

func TestPowerDomainNodeBounds(t *testing.T) {
	lib := stdcell.Default013()
	m := newMesh(2, 2)
	dom := m.BindMeters(lib, 25, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dom.Node(Coord{5, 5})
}
