package mesh

import (
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/sweep"
)

// PatternConfig drives one synthetic-traffic run on a W×H
// circuit-switched mesh: a spatial pattern chooses each node's
// destination, a temporal injection process times its words, and every
// source is an event-scheduled component, so sparse runs fast-forward
// under sim.KernelEvent.
type PatternConfig struct {
	// W and H are the mesh dimensions.
	W, H int
	// Cycles is the simulated length.
	Cycles int
	// FreqMHz is the network clock.
	FreqMHz float64
	// Lib is the technology library for the power meters.
	Lib stdcell.Lib
	// Gated enables configuration-driven clock gating on every router.
	Gated bool
	// Spatial chooses each node's destination.
	Spatial pattern.Spatial
	// Injection times each node's words.
	Injection pattern.Injection
	// FlipProb is the expected bit-flip fraction of consecutive data
	// words (the paper's data knob).
	FlipProb float64
	// Seed decorrelates runs; every flow derives its own streams.
	Seed uint64
	// WordsPerFlow caps each flow's words; 0 = unlimited. Exhausted
	// sources retire, and once the network drains the event kernel
	// fast-forwards the rest of the run.
	WordsPerFlow uint64
	// WarmupCycles truncates the measurement window: words injected or
	// delivered before this cycle are excluded from the aggregate
	// counts and the latency distribution (per-flow counts stay
	// full-run), so open-loop statistics are not biased by the
	// empty-network startup transient. Throughput should be computed
	// over the MeasuredCycles the result reports.
	WarmupCycles int
	// WarmupAuto detects the warm-up automatically with the MSER-5
	// steady-state rule over the delivery-latency sequence. Mutually
	// exclusive with WarmupCycles.
	WarmupAuto bool
	// Params overrides the router geometry (nil: paper defaults).
	Params *core.Params
	// Kernel selects the simulation kernel.
	Kernel sim.Kernel
	// SimWorkers bounds the goroutine pool the active kernel shards its
	// Eval sweep over (0 = GOMAXPROCS, 1 = sequential). Results are
	// byte-identical for every value; other kernels ignore it.
	SimWorkers int
	// Observe, when non-nil, receives the world after the run — kernel
	// diagnostics for tests and benchmarks. It must not mutate it.
	Observe func(*sim.World)
	// Obs carries the run's observability sinks: a structured event
	// tracer (flow setup, admission blocks, injections, deliveries,
	// kernel scheduling) and a metrics registry (lane-allocator probes
	// and rejections). The zero value disables both; enabling them never
	// changes the simulated result.
	Obs obs.Hooks
	// RetainLatency keeps the raw per-word latency observations on the
	// result's Latency series (Samples), so replicated runs can pool
	// them into one distribution. Off by default: a plain run only needs
	// the summary moments.
	RetainLatency bool
	// Warm, when non-nil, connects the run to the warm-start checkpoint
	// layer: before simulating, Lookup is consulted for a checkpoint of
	// this exact configuration prefix (everything but the run length);
	// a hit restores it and simulates only the remaining cycles, with
	// results byte-identical to a full run by the snapshot exactness
	// contract. After the run the final state is offered to Store. Any
	// snapshot or restore failure falls back silently to full
	// simulation.
	Warm *WarmHook
}

// WarmHook is the checkpoint exchange of a warm-started pattern run. The
// caller owns keying: both callbacks are already scoped to one
// configuration prefix (same mesh, pattern, injection, seed, retention —
// different run length), so the hook only speaks cycles and bytes.
type WarmHook struct {
	// Lookup returns a stored checkpoint taken at cycle <= maxCycle,
	// preferring the latest, and whether one exists.
	Lookup func(maxCycle uint64) (data []byte, cycle uint64, ok bool)
	// Store persists a checkpoint taken at the given cycle. Implementations
	// decide retention; Store may be nil.
	Store func(cycle uint64, data []byte)
}

// Validate checks the configuration.
func (c PatternConfig) Validate() error {
	if c.W < 2 || c.H < 2 {
		return fmt.Errorf("mesh: pattern run needs at least a 2x2 mesh, have %dx%d", c.W, c.H)
	}
	if c.Cycles < 1 {
		return fmt.Errorf("mesh: need at least 1 cycle")
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("mesh: non-positive frequency")
	}
	if c.FlipProb < 0 || c.FlipProb > 1 {
		return fmt.Errorf("mesh: flip probability %v out of [0,1]", c.FlipProb)
	}
	if err := c.Injection.Validate(); err != nil {
		return err
	}
	if c.WarmupCycles < 0 || c.WarmupCycles >= c.Cycles {
		return fmt.Errorf("mesh: warm-up %d out of [0, cycles=%d)", c.WarmupCycles, c.Cycles)
	}
	if c.WarmupCycles > 0 && c.WarmupAuto {
		return fmt.Errorf("mesh: explicit warm-up and auto-detection are mutually exclusive")
	}
	if c.Params != nil {
		if err := c.Params.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// PatternFlow is the outcome of one source→destination flow.
type PatternFlow struct {
	// Src and Dst are the endpoints.
	Src, Dst Coord
	// Hops is the route length in routers (0 when not established).
	Hops int
	// Established reports whether a lane path was available; circuit
	// switching admits traffic at setup time, so a pattern that
	// overloads a region (hotspot) shows up as rejected flows here,
	// not as queueing collapse.
	Established bool
	// WordsSent and WordsDelivered count the flow's traffic.
	WordsSent, WordsDelivered uint64
}

// PatternResult is the outcome of a mesh pattern run.
type PatternResult struct {
	// FlowsRequested and FlowsEstablished count the pattern's flows and
	// how many the lane allocator could route.
	FlowsRequested, FlowsEstablished int
	// WordsSent and WordsDelivered aggregate all flows over the
	// measurement window (the whole run without warm-up truncation).
	WordsSent, WordsDelivered uint64
	// Latency is the word-delivery latency distribution across all
	// established flows (source push to destination pop), over the
	// measurement window.
	Latency stats.Series
	// WarmupCycles is the effective warm-up: the explicit
	// configuration, or the MSER-detected truncation cycle. The
	// aggregate counts and Latency cover only [WarmupCycles, Cycles);
	// per-flow counts remain full-run.
	WarmupCycles uint64
	// MeasuredCycles is Cycles minus the warm-up — the window
	// throughput figures must divide by.
	MeasuredCycles uint64
	// Power aggregates every node meter; PerNode keeps them separate in
	// row-major order.
	Power   power.Breakdown
	PerNode []power.Breakdown
	// LaneUtilization is the fraction of the mesh's output lanes
	// reserved by established flows.
	LaneUtilization float64
	// Flows describes every requested flow, in source order.
	Flows []PatternFlow
}

// laneAlloc is the harness's single-lane circuit allocator: the same
// XY-then-YX probing the CCN uses, reduced to one lane per flow. (The
// CCN itself lives above this package and cannot be imported here.)
type laneAlloc struct {
	m      *Mesh
	used   [][]bool // per node, per global output lane
	tileIn [][]bool // per node, per tile input (transmit converter) lane

	// Optional establishment metrics (nil when metrics are disabled):
	// route probes attempted, flows rejected, hop counts of established
	// routes.
	probes  *obs.Counter
	rejects *obs.Counter
	hops    *obs.Histogram
}

func newLaneAlloc(m *Mesh, metrics *obs.Registry) *laneAlloc {
	a := &laneAlloc{
		m:       m,
		probes:  metrics.Counter("mesh.alloc.probes"),
		rejects: metrics.Counter("mesh.alloc.rejections"),
		hops:    metrics.Histogram("mesh.alloc.hops"),
	}
	for i := 0; i < m.Nodes(); i++ {
		a.used = append(a.used, make([]bool, m.P.TotalLanes()))
		a.tileIn = append(a.tileIn, make([]bool, m.P.LanesPerPort))
	}
	return a
}

func (a *laneAlloc) idx(c Coord) int { return c.Y*a.m.W + c.X }

// establish reserves and configures a single-lane circuit along the
// XY route (falling back to YX) and returns the endpoint converters.
//
// Endpoint admission runs first: both candidate routes start at the
// source's tile input and end at the destination's tile output, so a
// flow that cannot get either lane cannot be established on any route.
// Rejecting it here costs O(1) instead of two O(route) probes with
// their reservation bookkeeping — the cost that used to dominate short
// saturated pattern runs (a 64×64 hotspot run probes the full
// mesh-radius route twice for every one of ~4k doomed flows before
// failing at the same exhausted destination port every time).
func (a *laneAlloc) establish(src, dst Coord) (*core.TxConverter, *core.RxConverter, int, error) {
	if a.freeTileIn(src) < 0 {
		if a.rejects != nil {
			a.rejects.Add(1)
		}
		return nil, nil, 0, fmt.Errorf("mesh: no free tile input lane at %v", src)
	}
	if a.freeLane(dst, core.Tile) < 0 {
		if a.rejects != nil {
			a.rejects.Add(1)
		}
		return nil, nil, 0, fmt.Errorf("mesh: no free tile output lane at %v", dst)
	}
	routes := [][]Coord{XYPath(src, dst), yxPath(src, dst)}
	var lastErr error
	for _, route := range routes {
		if a.probes != nil {
			a.probes.Add(1)
		}
		tx, rx, err := a.tryRoute(route)
		if err == nil {
			if a.hops != nil {
				a.hops.Observe(uint64(len(route) - 1))
			}
			return tx, rx, len(route) - 1, nil
		}
		lastErr = err
	}
	if a.rejects != nil {
		a.rejects.Add(1)
	}
	return nil, nil, 0, lastErr
}

// yxPath is the Y-then-X alternative to XYPath.
func yxPath(from, to Coord) []Coord {
	mid := Coord{X: from.X, Y: to.Y}
	path := XYPath(from, mid)
	rest := XYPath(mid, to)
	return append(path, rest[1:]...)
}

// tryRoute reserves one free lane on every hop of the route and
// configures the circuits; on failure nothing is reserved.
func (a *laneAlloc) tryRoute(route []Coord) (*core.TxConverter, *core.RxConverter, error) {
	type reservation struct {
		node int
		lane int // global output lane, or -1 for a tile input
		tin  int
	}
	var reserved []reservation
	release := func() {
		for _, r := range reserved {
			if r.lane >= 0 {
				a.used[r.node][r.lane] = false
			} else {
				a.tileIn[r.node][r.tin] = false
			}
		}
	}
	p := a.m.P

	// Source tile input lane.
	srcIdx := a.idx(route[0])
	tin := a.freeTileIn(route[0])
	if tin < 0 {
		return nil, nil, fmt.Errorf("mesh: no free tile input lane at %v", route[0])
	}
	a.tileIn[srcIdx][tin] = true
	reserved = append(reserved, reservation{node: srcIdx, lane: -1, tin: tin})

	type seg struct {
		node Coord
		circ core.Circuit
	}
	var segs []seg
	inLane := core.LaneID{Port: core.Tile, Lane: tin}
	for h := 0; h < len(route)-1; h++ {
		node, next := route[h], route[h+1]
		outPort, err := PortTowards(node, next)
		if err != nil {
			release()
			return nil, nil, err
		}
		l := a.freeLane(node, outPort)
		if l < 0 {
			release()
			return nil, nil, fmt.Errorf("mesh: no free lane %v -> %v", node, next)
		}
		gl := p.Global(core.LaneID{Port: outPort, Lane: l})
		a.used[a.idx(node)][gl] = true
		reserved = append(reserved, reservation{node: a.idx(node), lane: gl})
		segs = append(segs, seg{node: node, circ: core.Circuit{
			In:  inLane,
			Out: core.LaneID{Port: outPort, Lane: l},
		}})
		inLane = core.LaneID{Port: outPort.Opposite(), Lane: l}
	}
	// Destination tile output lane.
	dstC := route[len(route)-1]
	l := a.freeLane(dstC, core.Tile)
	if l < 0 {
		release()
		return nil, nil, fmt.Errorf("mesh: no free tile output lane at %v", dstC)
	}
	gl := p.Global(core.LaneID{Port: core.Tile, Lane: l})
	a.used[a.idx(dstC)][gl] = true
	reserved = append(reserved, reservation{node: a.idx(dstC), lane: gl})
	segs = append(segs, seg{node: dstC, circ: core.Circuit{
		In:  inLane,
		Out: core.LaneID{Port: core.Tile, Lane: l},
	}})

	// Configure the routers and enable the endpoint converters.
	for i, s := range segs {
		asm := a.m.At(s.node)
		if err := asm.R.Configure(s.circ); err != nil {
			release()
			return nil, nil, err
		}
		if i == 0 && s.circ.In.Port == core.Tile {
			asm.Tx[s.circ.In.Lane].Enabled = true
		}
		if i == len(segs)-1 && s.circ.Out.Port == core.Tile {
			asm.Rx[s.circ.Out.Lane].Enabled = true
		}
	}
	return a.m.At(route[0]).Tx[tin], a.m.At(dstC).Rx[l], nil
}

// freeTileIn returns a free tile input (transmit converter) lane index
// at the node, or -1.
func (a *laneAlloc) freeTileIn(node Coord) int {
	for l, used := range a.tileIn[a.idx(node)] {
		if !used {
			return l
		}
	}
	return -1
}

// freeLane returns a free lane index on the node's port, or -1.
func (a *laneAlloc) freeLane(node Coord, port core.Port) int {
	p := a.m.P
	for l := 0; l < p.LanesPerPort; l++ {
		if !a.used[a.idx(node)][p.Global(core.LaneID{Port: port, Lane: l})] {
			return l
		}
	}
	return -1
}

// utilization returns the reserved fraction of all output lanes.
func (a *laneAlloc) utilization() float64 {
	total, used := 0, 0
	for _, lanes := range a.used {
		for _, u := range lanes {
			total++
			if u {
				used++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// flowStamps carries one flow's injection timestamps from its source to
// its sink. Both endpoints touch it during the Eval phase — the source
// appends from Emit, the sink pops — and under the active kernel's
// sharded sweep those Evals may run concurrently, so the queue carries
// its own lock. Per-flow FIFO order is exact: the flow is a single
// circuit lane, words cannot overtake.
type flowStamps struct {
	mu sync.Mutex
	q  []uint64
}

func (s *flowStamps) push(c uint64) {
	s.mu.Lock()
	s.q = append(s.q, c)
	s.mu.Unlock()
}

func (s *flowStamps) pop() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.q) == 0 {
		return 0, false
	}
	c := s.q[0]
	s.q = s.q[1:]
	return c, true
}

// patternSink drains one flow's receive converter and records each
// word's delivery latency. It is a first-class quiescent component:
// while the converter buffer is empty, popping is a no-op and the
// kernel skips the sink, so a drained mesh quiesces end to end. With
// warm-up accounting on, samples go to the cycle-stamped recorder so
// the transient can be truncated after the run; otherwise they
// accumulate directly. The recorder and series are shared by every
// sink in the run, so samples are recorded in the sequential Commit
// phase — in registration order, the same accumulation order under
// every kernel and shard count — never in the (possibly parallel)
// Eval phase.
type patternSink struct {
	rx     *core.RxConverter
	stamps *flowStamps
	lat    *stats.Series
	rec    *stats.TimedSeries // non-nil when warm-up accounting is on
	cycle  uint64
	popped uint64

	pendingLat float64
	hasPending bool

	// tracer, when non-nil, receives a domain-scope deliver event per
	// drained word on the track name. Emission happens in Commit — the
	// sequential phase — so the stream is identical under every kernel
	// and shard count.
	tracer obs.Tracer
	track  string
}

// Eval implements sim.Clocked.
func (d *patternSink) Eval() {
	if _, ok := d.rx.Pop(); ok {
		if c, ok := d.stamps.pop(); ok {
			d.pendingLat = float64(d.cycle - c)
			d.hasPending = true
		}
		d.popped++
	}
}

// Commit implements sim.Clocked.
func (d *patternSink) Commit() {
	if d.hasPending {
		if d.rec != nil {
			d.rec.Add(d.cycle, d.pendingLat)
		} else {
			d.lat.Add(d.pendingLat)
		}
		if d.tracer != nil {
			d.tracer.Emit(obs.Event{Cycle: d.cycle, Track: d.track,
				Kind: obs.KindDeliver, Value: int64(d.pendingLat)})
		}
		d.hasPending = false
	}
	d.cycle++
}

// TraceName implements sim.TraceNamer.
func (d *patternSink) TraceName() string { return d.track }

// Quiescent implements sim.Quiescer: nothing buffered, nothing to pop.
func (d *patternSink) Quiescent() bool { return d.rx.Available() == 0 }

// IdleTick implements sim.IdleTicker: track skipped cycles.
func (d *patternSink) IdleTick() { d.cycle++ }

// IdleWindow implements sim.IdleWindower.
func (d *patternSink) IdleWindow(n uint64) { d.cycle += n }

// patternSource drives one established flow: the event-scheduled
// injection source plus the flow-local stream state its Emit closure
// feeds — the data-word generator, the in-flight injection stamps and
// the warm-up injection record. Embedding *pattern.Source forwards the
// kernel interfaces (sim.Clocked, Quiescer, IdleWindower, Timed); the
// wrapper adds sim.Snapshotter over the whole flow-head state so a
// warm-start checkpoint captures the flow exactly.
type patternSource struct {
	*pattern.Source
	gen    *bitvec.FlipGen
	stamps *flowStamps
	sent   []uint64 // injection stamps, warm-up accounting only
}

// TraceName implements sim.TraceNamer.
func (s *patternSource) TraceName() string { return s.Source.Track }

// liveFlow is one established flow's simulation handles.
type liveFlow struct {
	src  *patternSource
	sink *patternSink
	idx  int
}

// patternSim is one pattern run split into phases so the warm-start
// layer can interpose: setup (mesh construction, metering, lane
// establishment, component registration), run (cold, or
// restore-then-continue from a checkpoint) and finish (counts, warm-up
// truncation, power reports).
type patternSim struct {
	cfg    PatternConfig
	m      *Mesh
	dom    *PowerDomain
	alloc  *laneAlloc
	res    *PatternResult
	warmup bool
	latRec *stats.TimedSeries // non-nil when warm-up accounting is on
	live   []liveFlow
}

// newPatternSim validates the configuration and builds the fully
// established world, stopping just short of simulating. Establishment
// happens here — before any checkpoint restore — because lane setup is
// an instantaneous, deterministic function of the configuration, so the
// restored state was produced by an identical establishment.
func newPatternSim(cfg PatternConfig) (*patternSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := core.DefaultParams()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	ps := &patternSim{
		cfg: cfg,
		m: New(cfg.W, cfg.H, p, core.DefaultAssemblyOptions(),
			sim.WithKernel(cfg.Kernel), sim.WithParallelism(cfg.SimWorkers),
			sim.WithTracer(cfg.Obs.Tracer)),
		res:    &PatternResult{},
		warmup: cfg.WarmupCycles > 0 || cfg.WarmupAuto,
	}
	m, res := ps.m, ps.res
	dom := m.BindMeters(cfg.Lib, cfg.FreqMHz, cfg.Gated)
	alloc := newLaneAlloc(m, cfg.Obs.Metrics)
	ps.dom, ps.alloc = dom, alloc

	if cfg.RetainLatency {
		// The sinks feed res.Latency directly; under warm-up accounting
		// the series is rebuilt from the timed record, which always
		// retains.
		res.Latency.Retain()
	}
	flows := cfg.Spatial.Flows(cfg.W, cfg.H, cfg.Seed)
	res.FlowsRequested = len(flows)

	// Warm-up accounting: cycle-stamped latency samples and injection
	// stamps, collected only when a measurement window is requested so
	// the default path stays allocation-free. Injection stamps are
	// collected per flow (each source's Eval appends to its own slice,
	// so the sharded sweep races on nothing) and only counted after the
	// run.
	warmup := ps.warmup
	if warmup {
		ps.latRec = &stats.TimedSeries{}
	}
	latRec := ps.latRec

	tracer := cfg.Obs.Tracer
	for _, f := range flows {
		srcC := Coord{X: f.Src % cfg.W, Y: f.Src / cfg.W}
		dstC := Coord{X: f.Dst % cfg.W, Y: f.Dst / cfg.W}
		pf := PatternFlow{Src: srcC, Dst: dstC}
		flowIdx := len(res.Flows)
		tx, rx, hops, err := alloc.establish(srcC, dstC)
		if err != nil {
			if tracer != nil {
				tracer.Emit(obs.Event{Track: "mesh.flows",
					Kind: obs.KindAdmissionBlock, Value: int64(flowIdx),
					Detail: fmt.Sprintf("%v->%v", srcC, dstC)})
			}
			res.Flows = append(res.Flows, pf)
			continue
		}
		pf.Established = true
		pf.Hops = hops
		res.FlowsEstablished++
		if tracer != nil {
			tracer.Emit(obs.Event{Track: "mesh.flows",
				Kind: obs.KindFlowSetup, Value: int64(flowIdx),
				Detail: fmt.Sprintf("%v->%v hops=%d", srcC, dstC, hops)})
		}

		// Per-flow deterministic streams: data words and arrival times
		// both derive from the run seed and the flow's source node.
		flowSeed := sweep.Mix64(cfg.Seed + uint64(f.Src)*0x9E3779B97F4A7C15)
		ms := &patternSource{
			gen:    bitvec.NewFlipGen(16, cfg.FlipProb, flowSeed^0xDA7A),
			stamps: &flowStamps{},
		}
		src := pattern.NewSource(cfg.Injection, flowSeed, cfg.WordsPerFlow, nil)
		src.Emit = func() bool {
			if !tx.Ready() {
				return false
			}
			if !tx.Push(core.DataWord(uint16(ms.gen.Next()))) {
				return false
			}
			ms.stamps.push(src.Cycle())
			if warmup {
				ms.sent = append(ms.sent, src.Cycle())
			}
			return true
		}
		ms.Source = src
		src.Tracer = tracer
		src.Track = fmt.Sprintf("flow%d.src", flowIdx)
		sink := &patternSink{rx: rx, stamps: ms.stamps, lat: &res.Latency, rec: latRec,
			tracer: tracer, track: fmt.Sprintf("flow%d.sink", flowIdx)}
		m.World().Add(ms, sink)
		// Parking contract: the source is self-scheduled (woken only by
		// its own NextEvent), the sink's quiescence ends only when its
		// destination assembly commits a delivery into the receive
		// converter.
		m.World().DependsOn(ms)
		m.World().DependsOn(sink, m.At(dstC))
		ps.live = append(ps.live, liveFlow{src: ms, sink: sink, idx: len(res.Flows)})
		res.Flows = append(res.Flows, pf)
	}
	return ps, nil
}

// finish reads the post-run world into the result.
func (ps *patternSim) finish() (*PatternResult, error) {
	cfg, res := ps.cfg, ps.res
	if cfg.Observe != nil {
		cfg.Observe(ps.m.World())
	}
	for _, lf := range ps.live {
		pf := &res.Flows[lf.idx]
		pf.WordsSent = lf.src.Sent()
		pf.WordsDelivered = lf.sink.popped
		res.WordsSent += pf.WordsSent
		res.WordsDelivered += pf.WordsDelivered
	}
	res.MeasuredCycles = uint64(cfg.Cycles)
	if ps.warmup {
		// Resolve the effective warm-up cycle — configured, or the
		// MSER-5 steady-state truncation of the delivery-latency
		// sequence — then recompute the aggregate statistics over the
		// measurement window. Per-flow counts stay full-run.
		latRec := ps.latRec
		w := uint64(cfg.WarmupCycles)
		start := latRec.TruncateCycle(w)
		if cfg.WarmupAuto && latRec.Len() > 0 {
			start = latRec.SteadyStateIndex(stats.MSERBatch)
			w = latRec.CycleAt(start)
		}
		res.Latency = latRec.SeriesFrom(start)
		res.WarmupCycles = w
		res.MeasuredCycles = uint64(cfg.Cycles) - w
		res.WordsDelivered = uint64(latRec.Len() - start)
		var sent uint64
		for _, lf := range ps.live {
			for _, c := range lf.src.sent {
				if c >= w {
					sent++
				}
			}
		}
		res.WordsSent = sent
	}
	res.LaneUtilization = ps.alloc.utilization()
	res.Power = ps.dom.Report(fmt.Sprintf("pattern %v x %v", cfg.Spatial, cfg.Injection))
	res.PerNode = ps.dom.PerNode("pattern node")
	return res, nil
}

// RunPattern simulates the pattern on a W×H circuit-switched mesh. Each
// flow of the spatial pattern gets a single-lane circuit (XY then YX
// probing); flows the allocator cannot route are reported as not
// established — the circuit fabric's admission-time answer to
// overload. Established flows are driven by event-scheduled
// pattern.Sources and drained by quiescent sinks, so a sparse run
// fast-forwards between words under sim.KernelEvent with results
// byte-identical to the gated and naive kernels.
//
// With cfg.Warm set, the run may start from a stored checkpoint of the
// same configuration prefix and simulate only the remaining cycles; the
// result is byte-identical either way by the snapshot exactness
// contract, and any snapshot failure falls back to full simulation.
func RunPattern(cfg PatternConfig) (*PatternResult, error) {
	ps, err := newPatternSim(cfg)
	if err != nil {
		return nil, err
	}
	if !ps.runWarm() {
		// A checkpoint restore failed partway and may have left the
		// world tainted: rebuild from scratch and run cold.
		if ps, err = newPatternSim(cfg); err != nil {
			return nil, err
		}
		ps.m.Run(cfg.Cycles)
	}
	return ps.finish()
}

var _ sim.IdleWindower = (*patternSink)(nil)
var _ sim.Quiescer = (*patternSink)(nil)
