package mesh

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/stdcell"
)

// PowerDomain holds one power meter per mesh node, so whole-NoC power can
// be estimated for an application mapping — the system-level view of the
// paper's per-router comparison.
type PowerDomain struct {
	meters  []*power.Meter
	m       *Mesh
	freqMHz float64
}

// BindMeters attaches a meter to every assembly in the mesh. With gated
// true, every router applies the configuration-driven clock gating of
// Section 7.3 — unconfigured routers then cost only leakage plus their
// configuration memory's clock.
func (m *Mesh) BindMeters(lib stdcell.Lib, freqMHz float64, gated bool) *PowerDomain {
	d := &PowerDomain{m: m, freqMHz: freqMHz}
	design := core.Netlist(m.P, lib)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			meter := power.NewMeter(design, lib, freqMHz)
			m.At(Coord{x, y}).BindMeter(meter, lib, gated)
			d.meters = append(d.meters, meter)
		}
	}
	return d
}

// Node returns the meter of one node.
func (d *PowerDomain) Node(c Coord) *power.Meter {
	if !d.m.InBounds(c) {
		panic(fmt.Sprintf("mesh: %v outside %dx%d", c, d.m.W, d.m.H))
	}
	return d.meters[c.Y*d.m.W+c.X]
}

// Report aggregates all node meters into one NoC-level breakdown.
// It panics (via the meter) if no cycles were simulated.
func (d *PowerDomain) Report(name string) power.Breakdown {
	total := power.Breakdown{Name: name, FreqMHz: d.freqMHz}
	for _, m := range d.meters {
		b := m.Report(name)
		total.Cycles = b.Cycles
		total.StaticUW += b.StaticUW
		total.InternalUW += b.InternalUW
		total.SwitchingUW += b.SwitchingUW
	}
	return total
}

// PerNode returns each node's breakdown in row-major order.
func (d *PowerDomain) PerNode(name string) []power.Breakdown {
	out := make([]power.Breakdown, len(d.meters))
	for i, m := range d.meters {
		out[i] = m.Report(name)
	}
	return out
}
