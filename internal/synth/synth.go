// Package synth reproduces the paper's synthesis evaluation: it builds the
// structural netlists of the three routers of Table 4 — the proposed
// circuit-switched router, the packet-switched virtual-channel equivalent
// and the Æthereal TDM router — prices them with the 0.13 µm library model
// and renders the table (area breakdown, maximum frequency, bandwidth per
// link).
package synth

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/aethereal"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/packetsw"
	"repro/internal/stdcell"
)

// Row is one column of Table 4 (one router).
type Row struct {
	// Name identifies the router.
	Name string
	// Ports and DataWidth echo the configuration.
	Ports     int
	DataWidth int
	// Blocks maps Table 4 row names to areas in mm²; absent entries
	// render as "-" (not applicable).
	Blocks map[string]float64
	// TotalMM2 is the total area in mm².
	TotalMM2 float64
	// MaxFreqMHz is the synthesis frequency estimate.
	MaxFreqMHz float64
	// BandwidthGbps is the per-direction link bandwidth at MaxFreqMHz.
	BandwidthGbps float64
}

// BlockOrder is the presentation order of Table 4's area rows.
var BlockOrder = []string{
	"crossbar", "buffering", "arbitration", "configuration", "data converter", "misc",
}

// CircuitSwitchedRow builds the circuit-switched router's column.
func CircuitSwitchedRow(p core.Params, lib stdcell.Lib) Row {
	d := core.Netlist(p, lib)
	return Row{
		Name:      "circuit switched",
		Ports:     p.Ports,
		DataWidth: p.LanesPerPort * p.LaneWidth,
		Blocks: map[string]float64{
			"crossbar":       d.BlockAreaMM2(lib, core.BlockCrossbar),
			"configuration":  d.BlockAreaMM2(lib, core.BlockConfiguration),
			"data converter": d.BlockAreaMM2(lib, core.BlockDataConverter),
		},
		TotalMM2:      d.AreaMM2(lib),
		MaxFreqMHz:    d.MaxFreqMHz(lib),
		BandwidthGbps: core.LinkBandwidthGbps(p, d.MaxFreqMHz(lib)),
	}
}

// PacketSwitchedRow builds the packet-switched router's column.
func PacketSwitchedRow(p packetsw.Params, lib stdcell.Lib) Row {
	d := packetsw.Netlist(p, lib)
	return Row{
		Name:      "packet switched",
		Ports:     p.Ports,
		DataWidth: p.PhitBits,
		Blocks: map[string]float64{
			"crossbar":    d.BlockAreaMM2(lib, packetsw.BlockCrossbar),
			"buffering":   d.BlockAreaMM2(lib, packetsw.BlockBuffering),
			"arbitration": d.BlockAreaMM2(lib, packetsw.BlockArbitration),
			"misc":        d.BlockAreaMM2(lib, packetsw.BlockMisc),
		},
		TotalMM2:      d.AreaMM2(lib),
		MaxFreqMHz:    d.MaxFreqMHz(lib),
		BandwidthGbps: packetsw.LinkBandwidthGbps(p, d.MaxFreqMHz(lib)),
	}
}

// AetherealRow builds the Æthereal column. The paper reports only its
// total (the breakdown is "n.a."), so Blocks is empty.
func AetherealRow(p aethereal.Params, lib stdcell.Lib) Row {
	d := aethereal.Netlist(p, lib)
	return Row{
		Name:          "Aethereal",
		Ports:         p.Ports,
		DataWidth:     p.WordBits,
		Blocks:        map[string]float64{},
		TotalMM2:      d.AreaMM2(lib),
		MaxFreqMHz:    d.MaxFreqMHz(lib),
		BandwidthGbps: aethereal.LinkBandwidthGbps(p, d.MaxFreqMHz(lib)),
	}
}

// Table4 returns the three rows with the paper's default configurations.
func Table4(lib stdcell.Lib) []Row {
	return []Row{
		CircuitSwitchedRow(core.DefaultParams(), lib),
		PacketSwitchedRow(packetsw.DefaultParams(), lib),
		AetherealRow(aethereal.DefaultParams(), lib),
	}
}

// PaperTable4 holds the published numbers for side-by-side comparison.
var PaperTable4 = map[string]struct {
	TotalMM2      float64
	MaxFreqMHz    float64
	BandwidthGbps float64
}{
	"circuit switched": {0.0506, 1075, 17.2},
	"packet switched":  {0.1800, 507, 8.1},
	"Aethereal":        {0.1750, 500, 16},
}

// Render writes the table in the paper's layout, with a trailing
// paper-vs-measured comparison block.
func Render(w io.Writer, rows []Row) error {
	cell := func(s string) string { return fmt.Sprintf("%-18s", s) }
	var b strings.Builder
	b.WriteString(cell("Router"))
	for _, r := range rows {
		b.WriteString(cell(r.Name))
	}
	b.WriteString("\n")
	b.WriteString(cell("Ports"))
	for _, r := range rows {
		b.WriteString(cell(fmt.Sprintf("%d", r.Ports)))
	}
	b.WriteString("\n")
	b.WriteString(cell("Width of data"))
	for _, r := range rows {
		b.WriteString(cell(fmt.Sprintf("%d bit", r.DataWidth)))
	}
	b.WriteString("\n")
	for _, blk := range BlockOrder {
		any := false
		for _, r := range rows {
			if _, ok := r.Blocks[blk]; ok {
				any = true
			}
		}
		if !any {
			continue
		}
		b.WriteString(cell(strings.ToUpper(blk[:1]) + blk[1:]))
		for _, r := range rows {
			if a, ok := r.Blocks[blk]; ok {
				b.WriteString(cell(fmt.Sprintf("%.4f mm2", a)))
			} else if r.Name == "Aethereal" {
				b.WriteString(cell("n.a."))
			} else {
				b.WriteString(cell("-"))
			}
		}
		b.WriteString("\n")
	}
	b.WriteString(cell("Total"))
	for _, r := range rows {
		b.WriteString(cell(fmt.Sprintf("%.4f mm2", r.TotalMM2)))
	}
	b.WriteString("\n")
	b.WriteString(cell("Max freq."))
	for _, r := range rows {
		b.WriteString(cell(fmt.Sprintf("%.0f MHz", r.MaxFreqMHz)))
	}
	b.WriteString("\n")
	b.WriteString(cell("Bandwidth/link"))
	for _, r := range rows {
		b.WriteString(cell(fmt.Sprintf("%.1f Gb/s", r.BandwidthGbps)))
	}
	b.WriteString("\n\npaper vs measured:\n")
	for _, r := range rows {
		if ref, ok := PaperTable4[r.Name]; ok {
			fmt.Fprintf(&b,
				"  %-17s area %.4f vs %.4f mm2 (%+.0f%%)  fmax %.0f vs %.0f MHz (%+.0f%%)\n",
				r.Name, r.TotalMM2, ref.TotalMM2, pct(r.TotalMM2, ref.TotalMM2),
				r.MaxFreqMHz, ref.MaxFreqMHz, pct(r.MaxFreqMHz, ref.MaxFreqMHz))
		}
	}
	// The headline claim: area ratio PS/CS ≈ 3.5.
	if len(rows) >= 2 && rows[0].TotalMM2 > 0 {
		fmt.Fprintf(&b, "  area ratio packet/circuit = %.2fx (paper: 3.5x)\n",
			rows[1].TotalMM2/rows[0].TotalMM2)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pct(got, want float64) float64 { return (got/want - 1) * 100 }

// LaneSweep is the design-space ablation the paper motivates in Section
// 5.1 ("The width and number of lanes are adjustable parameters"): it
// sweeps lane count and width and reports area, frequency and per-stream
// bandwidth of the circuit-switched router.
type LaneSweepPoint struct {
	// Lanes and Width are the swept parameters.
	Lanes, Width int
	// AreaMM2 is the router area.
	AreaMM2 float64
	// MaxFreqMHz is the frequency estimate.
	MaxFreqMHz float64
	// LinkGbps is the per-direction link bandwidth at MaxFreqMHz.
	LinkGbps float64
	// Streams is the number of concurrent circuits per link direction.
	Streams int
}

// DefaultLaneSweep evaluates the standard design-space grid of
// Section 5.1 (2-8 lanes, 2-8 bit): the one grid the `lanes` experiment
// and the nocsynth -sweep report share.
func DefaultLaneSweep(lib stdcell.Lib) []LaneSweepPoint {
	return LaneSweep(lib, []int{2, 4, 6, 8}, []int{2, 4, 8})
}

// LaneSweep evaluates the given lane-count and lane-width choices.
func LaneSweep(lib stdcell.Lib, lanes, widths []int) []LaneSweepPoint {
	var out []LaneSweepPoint
	for _, n := range lanes {
		for _, w := range widths {
			p := core.Params{Ports: 5, LanesPerPort: n, LaneWidth: w, TileWidth: 16}
			if p.Validate() != nil {
				continue
			}
			d := core.Netlist(p, lib)
			f := d.MaxFreqMHz(lib)
			out = append(out, LaneSweepPoint{
				Lanes: n, Width: w,
				AreaMM2:    d.AreaMM2(lib),
				MaxFreqMHz: f,
				LinkGbps:   core.LinkBandwidthGbps(p, f),
				Streams:    n,
			})
		}
	}
	return out
}

// Design exposes the netlists for callers that need the full designs.
func Design(name string, lib stdcell.Lib) (*netlist.Design, error) {
	switch name {
	case "circuit", "cs", "circuit-switched":
		return core.Netlist(core.DefaultParams(), lib), nil
	case "packet", "ps", "packet-switched":
		return packetsw.Netlist(packetsw.DefaultParams(), lib), nil
	case "aethereal", "tdm":
		return aethereal.Netlist(aethereal.DefaultParams(), lib), nil
	default:
		return nil, fmt.Errorf("synth: unknown design %q", name)
	}
}
