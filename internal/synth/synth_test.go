package synth

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stdcell"
)

var lib = stdcell.Default013()

func TestTable4Shape(t *testing.T) {
	rows := Table4(lib)
	if len(rows) != 3 {
		t.Fatalf("Table 4 has %d rows, want 3", len(rows))
	}
	cs, ps, ae := rows[0], rows[1], rows[2]
	if cs.Ports != 5 || ps.Ports != 5 || ae.Ports != 6 {
		t.Fatal("port counts wrong")
	}
	if cs.DataWidth != 16 || ps.DataWidth != 16 || ae.DataWidth != 32 {
		t.Fatal("data widths wrong")
	}
	// Headline claims of the paper's conclusion: the circuit-switched
	// router has lower area and higher throughput per direction.
	if cs.TotalMM2 >= ps.TotalMM2 {
		t.Fatal("CS router must be smaller than PS router")
	}
	if cs.MaxFreqMHz <= ps.MaxFreqMHz {
		t.Fatal("CS router must be faster than PS router")
	}
	if cs.BandwidthGbps <= ps.BandwidthGbps {
		t.Fatal("CS router must have higher link bandwidth")
	}
	// The ~3.5x area ratio, within ±20%.
	ratio := ps.TotalMM2 / cs.TotalMM2
	if ratio < 3.5*0.8 || ratio > 3.5*1.2 {
		t.Errorf("area ratio %.2f, paper 3.5 (±20%%)", ratio)
	}
}

func TestTable4AgainstPaperTotals(t *testing.T) {
	for _, r := range Table4(lib) {
		ref, ok := PaperTable4[r.Name]
		if !ok {
			t.Fatalf("no paper reference for %q", r.Name)
		}
		if r.TotalMM2 < ref.TotalMM2*0.75 || r.TotalMM2 > ref.TotalMM2*1.25 {
			t.Errorf("%s: area %.4f vs paper %.4f (±25%%)", r.Name, r.TotalMM2, ref.TotalMM2)
		}
		if r.MaxFreqMHz < ref.MaxFreqMHz*0.8 || r.MaxFreqMHz > ref.MaxFreqMHz*1.2 {
			t.Errorf("%s: fmax %.0f vs paper %.0f (±20%%)", r.Name, r.MaxFreqMHz, ref.MaxFreqMHz)
		}
	}
}

func TestRenderContainsEverything(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Table4(lib)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"circuit switched", "packet switched", "Aethereal",
		"Crossbar", "Buffering", "Configuration", "Data converter",
		"Total", "Max freq.", "Bandwidth/link", "n.a.",
		"area ratio packet/circuit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestLaneSweepMonotonicity(t *testing.T) {
	pts := LaneSweep(lib, []int{2, 4, 8}, []int{4})
	if len(pts) != 3 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	// More lanes: more area, more concurrent streams, wider crossbar
	// select -> not faster.
	for i := 1; i < len(pts); i++ {
		if pts[i].AreaMM2 <= pts[i-1].AreaMM2 {
			t.Errorf("area not monotone in lanes: %+v", pts)
		}
		if pts[i].Streams <= pts[i-1].Streams {
			t.Errorf("streams not monotone in lanes")
		}
		if pts[i].MaxFreqMHz > pts[i-1].MaxFreqMHz {
			t.Errorf("frequency should not increase with lane count")
		}
	}
	// Invalid width/lane combinations are skipped, not fatal.
	if got := LaneSweep(lib, []int{4}, []int{5}); len(got) != 0 {
		t.Errorf("invalid geometry not skipped: %+v", got)
	}
}

func TestDesignLookup(t *testing.T) {
	for _, name := range []string{"circuit", "cs", "packet", "ps", "aethereal", "tdm"} {
		d, err := Design(name, lib)
		if err != nil || d == nil {
			t.Errorf("Design(%q): %v", name, err)
		}
	}
	if _, err := Design("nope", lib); err == nil {
		t.Error("unknown design accepted")
	}
}
