module golang.org/x/tools

go 1.22
